"""RUNTIME-STORE — manifest mutation and persistent-cache throughput.

Shape: the PR-6 runtime tier (WAL-mode ``runtime.sqlite``) against the
legacy persistence strategy it replaced — a whole-``manifest.json``
rewrite per mutation (``atomic_write_bytes`` of every entry, which is
what ``SummaryStore`` did before the runtime tier).

Three measurements:

* **manifest mutations** — ``SummaryStore.write`` of small sketch
  bundles (one transactional row upsert + revision bump each) in
  artifacts/s, next to the simulated JSON baseline's rewrite cost at
  the same manifest sizes.  The JSON baseline's per-mutation cost grows
  linearly with the manifest; the runtime tier's does not — the gate
  only requires the tier to stay within 5x of the baseline at this
  small size (absolute cost is ~1 ms/write either way; the win is
  O(1) scaling, crash atomicity, and lock-file-free concurrency);
* **cache put / hit** — persistent query-result cache throughput in
  ops/s (every probe is one SQLite row lookup + hit-count bump);
* **version reads** — ``SummaryStore.version()`` per-call cost, which
  PR 6 made O(1) (derived from revision counters instead of hashing
  the manifest).

Run under pytest (``pytest benchmarks/bench_runtime_store.py``) or
standalone (``PYTHONPATH=src python benchmarks/bench_runtime_store.py
[--smoke]``).  Writes ``BENCH_runtime_store.json``.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from emit import write_bench_json
from repro.engine.sharded import ShardedSummarizer
from repro.ranks.hashing import KeyHasher
from repro.store.codec import atomic_write_bytes
from repro.store.runtime import RuntimeStore
from repro.store.store import SummaryStore

N_MUTATIONS = 400
N_CACHE_OPS = 2_000
N_VERSION_READS = 5_000
SEED = 17


def _tiny_bundle(index: int):
    engine = ShardedSummarizer(
        k=8, assignments=["h1"], n_shards=1, hasher=KeyHasher(SEED)
    )
    keys = np.arange(index * 4, index * 4 + 4)
    engine.ingest("h1", keys, np.full(4, 1.5))
    return engine.sketch_bundle()


def _json_baseline_seconds(root: Path, rows: list[dict]) -> float:
    """Cost of the legacy strategy: full-manifest rewrite per mutation."""
    manifest = root / "manifest-baseline.json"
    entries: list[dict] = []
    start = time.perf_counter()
    for row in rows:
        entries.append(row)
        atomic_write_bytes(
            manifest,
            json.dumps({"version": 1, "entries": entries}).encode("utf-8"),
        )
    return time.perf_counter() - start


def measure(
    n_mutations: int = N_MUTATIONS,
    n_cache_ops: int = N_CACHE_OPS,
    n_version_reads: int = N_VERSION_READS,
) -> dict:
    bundles = [_tiny_bundle(i) for i in range(n_mutations)]
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        store = SummaryStore(root / "store")
        start = time.perf_counter()
        for index, bundle in enumerate(bundles):
            store.write("bench", f"202607{(index % 28) + 1:02d}", bundle)
        sqlite_seconds = time.perf_counter() - start
        rows = [entry.to_json() for entry in store.entries()]
        assert len(rows) == n_mutations

        baseline_seconds = _json_baseline_seconds(root, rows)

        start = time.perf_counter()
        for _ in range(n_version_reads):
            store.version("bench")
        version_seconds = time.perf_counter() - start

        (root / "cache").mkdir()
        runtime = RuntimeStore(root / "cache")
        payload = {"estimate": 1.0 + 1e-9, "estimator": "pps", "n": 3}
        start = time.perf_counter()
        for index in range(n_cache_ops):
            runtime.cache_put(
                f"q{index}", "bench", "r1", payload,
                max_entries=n_cache_ops,
            )
        put_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for index in range(n_cache_ops):
            hit = runtime.cache_get(f"q{index}")
        hit_seconds = time.perf_counter() - start
        assert hit == payload  # exact float round-trip through the cache
        runtime.close()

    return {
        "n_mutations": n_mutations,
        "sqlite_seconds": sqlite_seconds,
        "baseline_seconds": baseline_seconds,
        "mutations_per_sec": n_mutations / sqlite_seconds,
        "baseline_mutations_per_sec": n_mutations / baseline_seconds,
        "vs_baseline": baseline_seconds / sqlite_seconds,
        "n_cache_ops": n_cache_ops,
        "cache_puts_per_sec": n_cache_ops / put_seconds,
        "cache_hits_per_sec": n_cache_ops / hit_seconds,
        "n_version_reads": n_version_reads,
        "version_reads_per_sec": n_version_reads / version_seconds,
    }


def render(result: dict) -> str:
    return "\n".join([
        f"RUNTIME-STORE — {result['n_mutations']} manifest mutations "
        f"(transactional rows vs full-JSON rewrite per mutation)",
        f"  runtime tier : {result['mutations_per_sec']:8.0f} mutations/s "
        f"({result['sqlite_seconds'] * 1e3:.0f} ms total, artifacts "
        f"included)",
        f"  json rewrite : {result['baseline_mutations_per_sec']:8.0f} "
        f"mutations/s ({result['baseline_seconds'] * 1e3:.0f} ms total, "
        f"manifest only) -> tier at {result['vs_baseline']:.2f}x baseline",
        f"  query cache  : {result['cache_puts_per_sec']:8.0f} puts/s   "
        f"{result['cache_hits_per_sec']:8.0f} hits/s "
        f"({result['n_cache_ops']} entries)",
        f"  version reads: {result['version_reads_per_sec']:8.0f} reads/s "
        f"(O(1) revision-derived tokens)",
    ])


def emit_json(result: dict) -> None:
    write_bench_json(
        "runtime_store",
        config={
            "n_mutations": result["n_mutations"],
            "n_cache_ops": result["n_cache_ops"],
            "n_version_reads": result["n_version_reads"],
            "seed": SEED,
        },
        metrics={
            key: result[key]
            for key in (
                "sqlite_seconds", "baseline_seconds", "mutations_per_sec",
                "baseline_mutations_per_sec", "vs_baseline",
                "cache_puts_per_sec", "cache_hits_per_sec",
                "version_reads_per_sec",
            )
        },
    )


def check_gates(result: dict) -> list[str]:
    failures = []
    # The bundle writes also encode + fsync artifacts, so allow headroom
    # against the manifest-only baseline at this small manifest size.
    if result["vs_baseline"] < 0.2:
        failures.append(
            f"runtime tier at {result['vs_baseline']:.2f}x the JSON "
            "baseline (need >= 0.2x)"
        )
    if result["cache_hits_per_sec"] < 200:
        failures.append(
            f"cache hits {result['cache_hits_per_sec']:.0f}/s (need >= 200)"
        )
    if result["version_reads_per_sec"] < 10_000:
        failures.append(
            f"version reads {result['version_reads_per_sec']:.0f}/s "
            "(need >= 10k: the token must be O(1))"
        )
    return failures


def test_runtime_store(benchmark, emit):
    result = benchmark.pedantic(
        lambda: measure(n_mutations=120, n_cache_ops=500,
                        n_version_reads=2_000),
        rounds=1, iterations=1,
    )
    emit(render(result), name="RUNTIME_store")
    emit_json(result)
    failures = check_gates(result)
    assert not failures, "; ".join(failures)


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        result = measure(n_mutations=120, n_cache_ops=500,
                         n_version_reads=2_000)
    else:
        result = measure()
    print(render(result))
    emit_json(result)
    failures = check_gates(result)
    if failures:
        print("GATE FAILURES: " + "; ".join(failures))
        sys.exit(1)
    print("gates passed")
