"""Setuptools shim (metadata lives in pyproject.toml).

Present so `pip install -e .` works in offline environments whose
setuptools predates full PEP 660 editable-install support.
"""

from setuptools import setup

setup()
