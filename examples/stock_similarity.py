"""Stock-market similarity: weighted Jaccard across trading days.

Uses coordinated k-mins sketches with independent-differences EXP ranks
(Theorem 4.1) to estimate the weighted Jaccard similarity of daily trading
*volume* across a window of days — a clustering primitive: days whose
volume distributed similarly across tickers get high similarity.  Price
attributes, being near-identical day to day, show similarity ≈ 1 and are
included for contrast.

Run:  python examples/stock_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro import jaccard_similarity
from repro.datasets.stocks import StocksConfig, stocks_daily_dataset
from repro.estimators.jaccard import jaccard_matrix
from repro.ranks import ExponentialRanks, get_rank_method
from repro.sampling import kmins_sketches

DAYS = 5
K = 600


def similarity_report(attribute: str, seed: int) -> None:
    dataset = stocks_daily_dataset(
        StocksConfig(n_tickers=1200, n_days=DAYS),
        seed=11,
        mode="dispersed",
        attribute=attribute,
    )
    family = ExponentialRanks()
    method = get_rank_method("independent_differences")
    rng = np.random.default_rng(seed)
    sketches = kmins_sketches(dataset.weights, family, method, K, rng)
    estimated = jaccard_matrix(sketches)
    exact = np.eye(DAYS)
    for i in range(DAYS):
        for j in range(i + 1, DAYS):
            value = jaccard_similarity(
                dataset, dataset.assignments[i], dataset.assignments[j]
            )
            exact[i, j] = exact[j, i] = value

    print(f"== weighted Jaccard matrix, attribute = {attribute} ==")
    header = "        " + "  ".join(f"{name:>7}" for name in dataset.assignments)
    print(header)
    for i, name in enumerate(dataset.assignments):
        cells = "  ".join(
            f"{estimated[i, j]:.3f}/{exact[i, j]:.3f}" for j in range(DAYS)
        )
        print(f"  {name:>5}  {cells}")
    print("  (each cell: k-mins estimate / exact)")
    error = np.abs(estimated - exact).max()
    print(f"  max abs error = {error:.4f} at k = {K}\n")


def main() -> None:
    similarity_report("volume", seed=1)
    similarity_report("high", seed=2)
    print(
        "Prices are near-identical across days (similarity ≈ 1); volume\n"
        "similarity decays with day distance — the structure a clustering\n"
        "application would consume."
    )


if __name__ == "__main__":
    main()
