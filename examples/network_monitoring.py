"""Network monitoring: cross-period traffic change detection from sketches.

The paper's motivating deployment: a router summarizes each hour's flow
records independently (bottom-k sample of byte counts per destination IP);
hours never see each other's data and coordinate only through a shared
hash of the key.  A central monitor later assembles the sketches and asks
questions the sketches were not specifically built for:

* How much traffic moved between the two hours (L1 difference)?
* How much of that change is attributable to web ports vs everything else
  (subpopulation queries, specified *after* summarization)?
* Which destinations have the largest estimated change ("representative
  keys" — something non-sample sketches cannot provide)?

Run:  python examples/network_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationSpec,
    BottomKStreamSampler,
    KeyHasher,
    IppsRanks,
    aggregate_stream,
    dispersed_estimator,
    exact_aggregate,
)
from repro.core.summary import build_summary_from_sketches
from repro.datasets.ip_traffic import IPTraceConfig, generate_ip_trace
from repro.datasets.ip_traffic import ip_dispersed_dataset

K = 400
WEB_PORTS = {80, 443, 8080}


def main() -> None:
    config = IPTraceConfig(
        n_periods=2, flows_per_period=12_000, n_dest_ips=1200, n_src_ips=4000
    )
    trace = generate_ip_trace(config, seed=2009)
    family = IppsRanks()
    hasher = KeyHasher(salt=0xC0FFEE)  # shared across all periods

    # --- at each router / hour: one pass, no cross-period state ---------
    sketches = {}
    web_bytes: dict[str, dict[int, float]] = {}
    for period in (0, 1):
        name = f"hour{period + 1}"
        per_key = aggregate_stream(
            (record.dst_ip, float(record.bytes))
            for record in trace
            if record.period == period
        )
        sampler = BottomKStreamSampler(k=K, family=family, hasher=hasher)
        sampler.process_stream(per_key.items())
        sketches[name] = sampler.sketch()
        web_bytes[name] = aggregate_stream(
            (record.dst_ip, float(record.bytes))
            for record in trace
            if record.period == period and record.dst_port in WEB_PORTS
        )

    # --- at the monitor: assemble and query ------------------------------
    summary = build_summary_from_sketches(sketches, family)
    names = ("hour1", "hour2")
    spec_l1 = AggregationSpec("l1", names)
    l1_weights = dispersed_estimator(summary, spec_l1)

    dataset = ip_dispersed_dataset(trace, "destip", "bytes")  # ground truth
    exact_l1 = exact_aggregate(
        dataset, AggregationSpec("l1", tuple(dataset.assignments))
    )
    print("== total cross-hour byte change (L1) ==")
    print(f"  estimated: {l1_weights.total():16,.0f}")
    print(f"  exact:     {exact_l1:16,.0f}")
    rel = abs(l1_weights.total() - exact_l1) / exact_l1
    print(f"  relative error: {rel:.1%}  (k = {K} of "
          f"{dataset.n_keys} destinations)")

    # subpopulation specified after the fact: destinations that are
    # web-heavy in hour 1 (predicate evaluated per sampled key).
    web_dests = {
        dest
        for dest, volume in web_bytes["hour1"].items()
        if volume > 0.0
    }
    mask = np.array([key in web_dests for key in summary.keys])
    selected = mask[l1_weights.positions]
    web_change = float(l1_weights.values[selected].sum())
    p1, p2 = dataset.assignments
    exact_web = float(
        sum(
            abs(dataset.weight(key, p1) - dataset.weight(key, p2))
            for key in dataset.keys
            if key in web_dests
        )
    )
    print("\n== change restricted to web-active destinations ==")
    print(f"  estimated: {web_change:16,.0f}")
    print(f"  exact:     {exact_web:16,.0f}")

    # representative keys: top estimated movers
    order = np.argsort(-l1_weights.values)[:5]
    print("\n== top estimated movers (destIP, adjusted L1 weight) ==")
    for row in order:
        key = summary.keys[l1_weights.positions[row]]
        print(f"  dest {key:>6}: {l1_weights.values[row]:14,.0f}")


if __name__ == "__main__":
    main()
