"""Quickstart: summarize a multi-assignment dataset and answer queries.

Walks through the three core steps on the paper's own 6-key example
(Figure 2): build a dataset, draw a coordinated bottom-k summary, and
estimate single- and multiple-assignment aggregates — then repeats the
min/max/L1 estimates at a realistic scale to show convergence.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationSpec,
    MultiAssignmentDataset,
    colocated_estimator,
    dispersed_estimator,
    exact_aggregate,
    summarize_dataset,
)
from repro.datasets import correlated_zipf_dataset


def tiny_example() -> None:
    """The Figure 2 dataset: 6 keys, 3 weight assignments."""
    dataset = MultiAssignmentDataset(
        keys=["i1", "i2", "i3", "i4", "i5", "i6"],
        assignments=["w1", "w2", "w3"],
        weights=[
            [15.0, 20.0, 10.0],
            [0.0, 10.0, 15.0],
            [10.0, 12.0, 15.0],
            [5.0, 20.0, 0.0],
            [10.0, 0.0, 15.0],
            [10.0, 10.0, 10.0],
        ],
    )
    print("== tiny example (paper Figure 2) ==")
    summary = summarize_dataset(dataset, k=3, mode="colocated", seed=7)
    print(f"summary: {summary}")
    for spec in (
        AggregationSpec("single", ("w2",)),
        AggregationSpec("max", ("w1", "w2", "w3")),
        AggregationSpec("l1", ("w2", "w3")),
    ):
        estimate = colocated_estimator(summary, spec).total()
        exact = exact_aggregate(dataset, spec)
        print(
            f"  {spec.function:>6} over {','.join(spec.assignments):<10} "
            f"estimate = {estimate:8.2f}   exact = {exact:8.2f}"
        )


def realistic_example() -> None:
    """2000 Zipf-skewed keys, 3 assignments, dispersed summaries."""
    dataset = correlated_zipf_dataset(
        n_keys=2000, n_assignments=3, churn=0.15, seed=42
    )
    names = tuple(dataset.assignments)
    print("\n== realistic example (2000 keys, dispersed model, k=200) ==")
    estimates: dict[str, list[float]] = {"min": [], "max": [], "l1": []}
    for seed in range(5):
        summary = summarize_dataset(dataset, k=200, mode="dispersed", seed=seed)
        for function in estimates:
            spec = AggregationSpec(function, names)
            estimates[function].append(dispersed_estimator(summary, spec).total())
    for function, values in estimates.items():
        exact = exact_aggregate(dataset, AggregationSpec(function, names))
        mean = float(np.mean(values))
        spread = float(np.std(values))
        print(
            f"  {function:>4}: exact = {exact:12.1f}   "
            f"mean of 5 estimates = {mean:12.1f} (±{spread:.1f})"
        )


if __name__ == "__main__":
    tiny_example()
    realistic_example()
