"""Persistence layer: checkpoint mid-stream, resume, serve from disk.

A two-hour network monitor again (see sharded_pipeline.py), but this time
the process "crashes" halfway through ingestion:

1. ingest hour1 fully and half of hour2, checkpoint to disk, drop the
   summarizer (the crash);
2. restore from the checkpoint in a "new process" and finish the stream —
   the resulting summary is **bit-identical** to an uninterrupted run;
3. publish the per-hour sketches into a time-bucketed SummaryStore (one
   artifact per collector), roll the minute buckets up to one hour bucket
   (an exact merge), and answer aggregate queries straight from disk with
   QueryEngine.from_store — identical estimates before and after rollup.

Run:  python examples/checkpointed_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AggregationSpec,
    QueryEngine,
    ShardedSummarizer,
    SummaryStore,
)
from repro.ranks import KeyHasher

N_FLOWS = 4_000
EVENTS_PER_HOUR = 40_000
K = 400
HOURS = ["hour1", "hour2"]


def synth_hour(rng: np.random.Generator, churn: float):
    flows = rng.integers(0, N_FLOWS, EVENTS_PER_HOUR).astype(np.int64)
    alive = rng.random(N_FLOWS) >= churn
    sizes = rng.pareto(1.2, EVENTS_PER_HOUR) * 40.0 + 40.0
    return flows, np.where(alive[flows], sizes, 0.0)


def fresh_summarizer() -> ShardedSummarizer:
    return ShardedSummarizer(
        k=K, assignments=HOURS, n_shards=4, hasher=KeyHasher(42)
    )


def feed(engine, assignment, flows, sizes, lo, hi, batch=4096):
    for start in range(lo, hi, batch):
        stop = min(start + batch, hi)
        engine.ingest(assignment, flows[start:stop], sizes[start:stop])


def main() -> None:
    rng = np.random.default_rng(11)
    hours = {"hour1": synth_hour(rng, 0.10), "hour2": synth_hour(rng, 0.25)}

    with tempfile.TemporaryDirectory() as workdir:
        checkpoint_path = Path(workdir) / "ingest.ckpt"

        # --- baseline: one uninterrupted run -----------------------------
        baseline = fresh_summarizer()
        for name, (flows, sizes) in hours.items():
            feed(baseline, name, flows, sizes, 0, EVENTS_PER_HOUR)

        # --- interrupted run: crash halfway through hour2 ----------------
        engine = fresh_summarizer()
        feed(engine, "hour1", *hours["hour1"], 0, EVENTS_PER_HOUR)
        feed(engine, "hour2", *hours["hour2"], 0, EVENTS_PER_HOUR // 2)
        nbytes = engine.save_checkpoint(checkpoint_path)
        print(f"checkpointed {engine!r}")
        print(f"  -> {checkpoint_path.name} ({nbytes:,} bytes)")
        del engine  # the crash

        resumed = ShardedSummarizer.load_checkpoint(checkpoint_path)
        feed(resumed, "hour2", *hours["hour2"], EVENTS_PER_HOUR // 2,
             EVENTS_PER_HOUR)
        identical = resumed.summary().equals(baseline.summary())
        print(f"resumed summary bit-identical to uninterrupted run: "
              f"{identical}")

        # --- publish to a time-bucketed store, roll up, query ------------
        store = SummaryStore(Path(workdir) / "store")
        # Each collector publishes its bucket's sketches as one artifact;
        # here one artifact carries both hours for minute 12:01.
        store.write("flows", "20260728T1201", resumed.sketch_bundle())
        spec_rows = [
            ("hour1 total", AggregationSpec("single", ("hour1",))),
            ("max(h1,h2)", AggregationSpec("max", tuple(HOURS))),
            ("L1 change", AggregationSpec("l1", tuple(HOURS))),
        ]
        before = {
            label: QueryEngine.from_store(store, "flows").estimate(spec)
            for label, spec in spec_rows
        }
        store.compact("flows", to="hour")
        engine_after = QueryEngine.from_store(store, "flows")
        print("\nstore contents after minute->hour rollup:")
        print(store.ls())
        print("\naggregate            from store     rollup identical")
        for label, spec in spec_rows:
            after = engine_after.estimate(spec)
            print(f"{label:<14} {after:14.0f} {after == before[label]!r:>12}")


if __name__ == "__main__":
    main()
