"""Sharded engine: summarize raw event streams, no dense matrix anywhere.

Simulates a two-hour network monitor: each hour is a weight assignment,
events are unaggregated (flow, bytes) records arriving in batches.  A
`ShardedSummarizer` hash-partitions each hour across shard samplers,
merges the shard sketches exactly, and assembles the dispersed summary —
from which we estimate per-hour totals, the max/min/L1 change between
hours, and the weighted Jaccard similarity, against exact values.

Run:  python examples/sharded_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import AggregationSpec, ShardedSummarizer, jaccard_from_summary
from repro.estimators import dispersed_estimator
from repro.ranks import KeyHasher

N_FLOWS = 5_000
EVENTS_PER_HOUR = 60_000
K = 600


def synth_hour(rng: np.random.Generator, churn: float):
    """Unaggregated (flow-id, bytes) events for one hour."""
    flows = rng.integers(0, N_FLOWS, EVENTS_PER_HOUR)
    alive = rng.random(N_FLOWS) >= churn
    sizes = rng.pareto(1.2, EVENTS_PER_HOUR) * 40.0 + 40.0
    sizes = np.where(alive[flows], sizes, 0.0)
    return flows.astype(np.int64), sizes


def main() -> None:
    rng = np.random.default_rng(7)
    hours = {"hour1": synth_hour(rng, 0.10), "hour2": synth_hour(rng, 0.25)}

    engine = ShardedSummarizer(
        k=K, assignments=list(hours), n_shards=8, hasher=KeyHasher(42)
    )
    for name, (flows, sizes) in hours.items():
        # Arrive in batches, as a collector would ship them.
        for lo in range(0, EVENTS_PER_HOUR, 4096):
            engine.ingest(name, flows[lo : lo + 4096], sizes[lo : lo + 4096])
    summary = engine.summary()
    print(f"engine: {engine}")
    print(f"summary: {summary} (storage: {summary.storage_size()} keys, "
          f"sharing index {summary.sharing_index():.3f})")

    # Exact totals for comparison.
    exact = {}
    for name, (flows, sizes) in hours.items():
        totals = np.zeros(N_FLOWS)
        np.add.at(totals, flows, sizes)
        exact[name] = totals
    exact_max = np.maximum(exact["hour1"], exact["hour2"]).sum()
    exact_min = np.minimum(exact["hour1"], exact["hour2"]).sum()

    print("\naggregate            estimate         exact      error")
    rows = [
        ("hour1 total", AggregationSpec("single", ("hour1",)), exact["hour1"].sum()),
        ("hour2 total", AggregationSpec("single", ("hour2",)), exact["hour2"].sum()),
        ("max(h1,h2)", AggregationSpec("max", ("hour1", "hour2")), exact_max),
        ("min(h1,h2)", AggregationSpec("min", ("hour1", "hour2")), exact_min),
        ("L1 change", AggregationSpec("l1", ("hour1", "hour2")),
         exact_max - exact_min),
    ]
    for label, spec, true_value in rows:
        estimate = dispersed_estimator(summary, spec).total()
        error = abs(estimate - true_value) / true_value if true_value else 0.0
        print(f"{label:<14} {estimate:14.0f} {true_value:14.0f} {error:9.1%}")

    exact_jaccard = exact_min / exact_max
    estimated_jaccard = jaccard_from_summary(summary, ("hour1", "hour2"))
    print(f"{'Jaccard':<14} {estimated_jaccard:14.3f} {exact_jaccard:14.3f} "
          f"{abs(estimated_jaccard - exact_jaccard):9.3f}")


if __name__ == "__main__":
    main()
