"""Multicore pipeline: parallel ingest -> parallel compact -> serve_many.

The execution layer (`repro.engine.parallel`) turns the paper's
mergeability guarantee into multicore throughput without changing a
single output bit:

1. **ingest** — two collector summarizers (one per namespace) feed
   unaggregated (flow, bytes/packets) events through the partition-once
   `ingest_multi` path and finalize their key-disjoint shards under a
   process executor (per-shard buffers travel via shared memory);
2. **compact** — each namespace's minute buckets roll up to hour buckets
   concurrently (`SummaryStore.compact(..., executor=...)`), with the
   manifest mutation staying in the parent;
3. **serve** — `QueryEngine.serve_many` answers a query batch per
   namespace concurrently, each worker sharing one decoded summary per
   namespace across its whole batch.

Every step is also run serially to show the results are identical —
executors change where the work runs, never what it produces.

Run:  python examples/parallel_pipeline.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import (
    AggregationSpec,
    ProcessExecutor,
    Query,
    QueryEngine,
    ShardedSummarizer,
    SummaryStore,
    available_workers,
)
from repro.ranks import KeyHasher

N_FLOWS = 4_000
EVENTS_PER_BUCKET = 20_000
K = 400
MINUTE_BUCKETS = 4
NAMESPACES = ("edge", "core")


def synth_batch(rng: np.random.Generator):
    """One collector batch: flows with bytes and packet-count weights."""
    flows = rng.integers(0, N_FLOWS, EVENTS_PER_BUCKET)
    sizes = rng.pareto(1.2, EVENTS_PER_BUCKET) * 50.0 + 40.0
    packets = np.ceil(sizes / 1500.0)
    return flows.astype(np.int64), sizes, packets


def build_store(root: str, executor) -> SummaryStore:
    """Ingest MINUTE_BUCKETS minutes per namespace into a fresh store."""
    store = SummaryStore(root)
    rng = np.random.default_rng(42)
    for offset, namespace in enumerate(NAMESPACES):
        for minute in range(MINUTE_BUCKETS):
            engine = ShardedSummarizer(
                k=K, assignments=["bytes", "packets"], n_shards=8,
                hasher=KeyHasher(7), executor=executor,
            )
            flows, sizes, packets = synth_batch(rng)
            # keys must stay disjoint across buckets for exact rollups
            flows = flows + (offset * MINUTE_BUCKETS + minute) * N_FLOWS
            engine.ingest_multi(flows, {"bytes": sizes, "packets": packets})
            store.write(
                namespace, f"20260729T09{minute:02d}", engine.sketch_bundle()
            )
    return store


def main() -> None:
    workers = max(2, min(4, available_workers()))
    executor = ProcessExecutor(workers=workers)
    queries = [
        Query(AggregationSpec("single", ("bytes",)), label="total bytes"),
        Query(AggregationSpec("single", ("packets",)), label="total packets"),
        Query(AggregationSpec("max", ("bytes", "packets")), label="max(b,p)"),
    ]
    requests = {namespace: queries for namespace in NAMESPACES}

    with tempfile.TemporaryDirectory() as serial_root, \
            tempfile.TemporaryDirectory() as parallel_root:
        print(f"using ProcessExecutor(workers={workers}) "
              f"on {available_workers()} usable core(s)\n")

        serial_store = build_store(serial_root, None)
        parallel_store = build_store(parallel_root, executor)

        serial_store.compact("edge", to="hour")
        serial_store.compact("core", to="hour")
        for namespace in NAMESPACES:
            written = parallel_store.compact(
                namespace, to="hour", executor=executor
            )
            for entry in written:
                print(f"compacted {entry.namespace}: "
                      f"{MINUTE_BUCKETS} minute buckets -> {entry.bucket} "
                      f"({entry.nbytes:,} bytes)")

        serial_answers = QueryEngine.serve_many(serial_store, requests)
        parallel_answers = QueryEngine.serve_many(
            parallel_store, requests, executor=executor
        )
        executor.close()

        print(f"\n{'namespace':<10} {'query':<14} {'estimate':>14}  matches serial")
        for namespace in NAMESPACES:
            for serial_result, parallel_result in zip(
                serial_answers[namespace], parallel_answers[namespace]
            ):
                same = serial_result.estimate == parallel_result.estimate
                print(f"{namespace:<10} {parallel_result.label:<14} "
                      f"{parallel_result.estimate:14.0f}  {same}")
        assert all(
            serial_result.estimate == parallel_result.estimate
            for namespace in NAMESPACES
            for serial_result, parallel_result in zip(
                serial_answers[namespace], parallel_answers[namespace]
            )
        )
        print("\nparallel pipeline output is identical to the serial one.")


if __name__ == "__main__":
    main()
