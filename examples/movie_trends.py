"""Movie-ratings trends: colocated summaries with a posteriori queries.

Keys are movies, weight assignments are monthly rating counts (colocated:
the full monthly vector travels with each sampled movie).  One coordinated
summary answers, without re-touching the data:

* total ratings per month (single-assignment sums),
* stable interest floor over H1 (min-dominance norm),
* churn between adjacent months (L1),
* the same queries restricted to one genre — a predicate chosen after
  summarization,
* a storage comparison against independent per-month samples.

Run:  python examples/movie_trends.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregationSpec,
    colocated_estimator,
    exact_aggregate,
    summarize_dataset,
)
from repro.core.predicates import attribute_equals
from repro.datasets.netflix import NetflixConfig, netflix_monthly_dataset

K = 300


def main() -> None:
    dataset = netflix_monthly_dataset(NetflixConfig(n_movies=3000), seed=5)
    months = dataset.assignments
    summary = summarize_dataset(dataset, k=K, mode="colocated", seed=77)
    print(f"summary holds {summary.n_union} distinct movies "
          f"({summary.n_union / dataset.n_keys:.1%} of the catalogue), "
          f"k = {K} per month, {len(months)} months")
    print(f"sharing index = {summary.sharing_index():.3f} "
          f"(1/{len(months)} = {1 / len(months):.3f} would be perfect overlap)")

    print("\n== monthly rating totals (estimate vs exact) ==")
    for month in months[:6]:
        spec = AggregationSpec("single", (month,))
        estimate = colocated_estimator(summary, spec).total()
        exact = exact_aggregate(dataset, spec)
        bar = "#" * int(estimate / 2000)
        print(f"  {month}: {estimate:10.0f} vs {exact:10.0f}  {bar}")

    h1 = tuple(months[:6])
    for label, spec in [
        ("stable interest floor over H1 (min)", AggregationSpec("min", h1)),
        ("peak interest over H1 (max)", AggregationSpec("max", h1)),
        ("jan→feb churn (L1)", AggregationSpec("l1", (months[0], months[1]))),
    ]:
        estimate = colocated_estimator(summary, spec).total()
        exact = exact_aggregate(dataset, spec)
        print(f"\n== {label} ==\n  estimate = {estimate:12.0f}   "
              f"exact = {exact:12.0f}")

    # a-posteriori subpopulation: documentaries only
    predicate = attribute_equals("genre", "documentary")
    mask = predicate.mask(dataset)
    spec = AggregationSpec("l1", (months[0], months[1]))
    adjusted = colocated_estimator(summary, spec)
    estimate = adjusted.subpopulation(mask)
    spec_doc = AggregationSpec("l1", (months[0], months[1]),
                               predicate=predicate)
    exact = exact_aggregate(dataset, spec_doc)
    print("\n== jan→feb churn, documentaries only (predicate applied "
          "after summarization) ==")
    print(f"  estimate = {estimate:10.0f}   exact = {exact:10.0f}")

    # storage: coordinated vs independent summaries at the same k
    independent = summarize_dataset(
        dataset, k=K, mode="colocated", method="independent", seed=77
    )
    print("\n== storage at k = {0} per month ==".format(K))
    print(f"  coordinated summary: {summary.n_union:5d} distinct movies")
    print(f"  independent samples: {independent.n_union:5d} distinct movies")
    saving = 1 - summary.n_union / independent.n_union
    print(f"  coordination saves {saving:.1%} of the storage")


if __name__ == "__main__":
    main()
