"""Codec round-trip suite: bit-exact, deterministic, version-safe.

The contract under test (``repro.store.codec``):

* ``decode(encode(x))`` equals ``x`` bit for bit, across EXP/IPPS rank
  families, bottom-k / Poisson / combined summaries, samplers mid-stream,
  tuple and string keys, and empty / degenerate objects (hypothesis
  property plus directed cases);
* encoding is deterministic — equal objects give byte-identical blobs;
* unknown format versions, bad magic, truncation, and payload corruption
  are refused with clear errors, never misread;
* ``tests/data/golden_store_v1.cws`` pins the v1 binary format: the
  checked-in bytes must decode to today's objects *and* today's encoder
  must reproduce them exactly (regenerate with
  ``python tests/data/make_golden_store.py`` only on a deliberate format
  bump).
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summary import (
    build_bottomk_summary,
    build_poisson_summary,
    build_summary_from_sketches,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks, IppsRanks, RankFamily
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import BottomKStreamSampler, bottomk_from_ranks
from repro.sampling.poisson import poisson_from_ranks
from repro.store.codec import (
    CodecError,
    FORMAT_VERSION,
    MAGIC,
    SketchBundle,
    UnsupportedFormatError,
    decode,
    encode,
    read_file,
    write_file,
)

DATA_DIR = pathlib.Path(__file__).parent / "data"
GOLDEN = DATA_DIR / "golden_store_v1.cws"

FAMILIES = [IppsRanks(), ExponentialRanks()]


def golden_bundle() -> SketchBundle:
    """The deterministic artifact pinned by the golden file."""
    family, hasher = IppsRanks(), KeyHasher(7)
    streams = {
        "hour1": [
            ("alpha", 20.0), ("beta", 10.0), ("gamma", 12.0),
            (("srv", 1), 20.0), ("epsilon", 10.0), ("zeta", 10.0),
        ],
        "hour2": [
            ("alpha", 15.0), ("gamma", 9.5), ("delta", 3.25),
            (("srv", 1), 0.75), ("eta", 64.0),
        ],
    }
    sketches = {}
    for name, items in streams.items():
        sampler = BottomKStreamSampler(4, family, hasher)
        sampler.process_stream(items)
        sketches[name] = sampler.sketch()
    return SketchBundle("bottomk", sketches, family, hasher_salt=7)


def roundtrip(obj):
    """decode(encode(obj)), asserting deterministic re-encoding."""
    blob = encode(obj)
    back = decode(blob, verify=True)
    assert encode(back) == blob, "re-encoding a decoded object drifted"
    return back


def stream_sketch(items, k=3, family=None, salt=7):
    sampler = BottomKStreamSampler(
        k, family if family is not None else IppsRanks(), KeyHasher(salt)
    )
    sampler.process_stream(items)
    return sampler.sketch()


class TestSketchRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
    def test_stream_sketch(self, family):
        sk = stream_sketch(
            [("a", 3.0), ("b", 1.0), ("c", 9.0), ("d", 0.5)], family=family
        )
        assert roundtrip(sk).equals(sk)

    def test_matrix_sketch_int64_keys(self):
        rng = np.random.default_rng(3)
        ranks = rng.random(20)
        sk = bottomk_from_ranks(ranks, np.ones(20), k=5, seeds=rng.random(20))
        back = roundtrip(sk)
        assert back.equals(sk)
        assert back.keys.dtype == np.int64

    def test_exotic_keys(self):
        items = [
            (("flow", 12, ("nested", True)), 5.0),
            (2**80, 1.0),  # beyond int64
            (b"raw-bytes", 2.0),
            (False, 3.0),
            (2.5, 4.0),
            ("überflüssig", 0.25),
        ]
        sk = stream_sketch(items, k=6)
        back = roundtrip(sk)
        assert back.equals(sk)
        assert set(back.keys.tolist()) == set(sk.keys.tolist())

    def test_empty_sketch(self):
        sk = stream_sketch([("a", 0.0)])  # zero weight: nothing sampled
        assert len(sk) == 0
        assert roundtrip(sk).equals(sk)

    def test_fewer_than_k(self):
        sk = stream_sketch([("a", 1.0)], k=4)
        assert sk.threshold == np.inf
        assert roundtrip(sk).equals(sk)

    def test_seedless_sketch(self):
        ranks = np.array([0.3, 0.1, 0.7])
        sk = bottomk_from_ranks(ranks, np.ones(3), k=2)  # no seeds
        back = roundtrip(sk)
        assert back.seeds is None
        assert back.equals(sk)

    def test_poisson_sketch(self):
        rng = np.random.default_rng(5)
        sk = poisson_from_ranks(
            rng.random(30), rng.pareto(1.3, 30) + 0.1, tau=0.2,
            seeds=rng.random(30),
        )
        assert roundtrip(sk).equals(sk)

    def test_membership_rebuilt(self):
        sk = stream_sketch([("a", 3.0), ("b", 1.0)], k=2)
        back = roundtrip(sk)
        assert "a" in back and "missing" not in back


class TestSamplerRoundTrip:
    def test_resumed_sampler_matches(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(11))
        sampler.process_stream(
            [("a", 5.0), ("b", 1.0), ("c", 0.0), ("d", 2.0)]
        )
        resumed = roundtrip(sampler)
        for item in [("e", 9.0), ("f", 0.25)]:
            sampler.process(*item)
            resumed.process(*item)
        assert resumed.sketch().equals(sampler.sketch())

    def test_seen_set_survives(self):
        sampler = BottomKStreamSampler(2, ExponentialRanks(), KeyHasher(0))
        sampler.process("zero", 0.0)  # dropped from heap, but seen
        resumed = decode(encode(sampler))
        with pytest.raises(ValueError, match="seen twice"):
            resumed.process("zero", 1.0)

    def test_custom_hasher_refused(self):
        class SaltierHasher(KeyHasher):
            pass

        sampler = BottomKStreamSampler(2, IppsRanks(), SaltierHasher(1))
        with pytest.raises(CodecError, match="KeyHasher"):
            encode(sampler)

    def test_unregistered_family_refused(self):
        class HomebrewRanks(IppsRanks):
            name = "homebrew"

        sampler = BottomKStreamSampler(2, HomebrewRanks(), KeyHasher(1))
        with pytest.raises(CodecError, match="registry"):
            encode(sampler)


def _summary(mode, method, family, kind="bottomk", n=30, m=3, k=5, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.pareto(1.3, (n, m)) * 10.0 + 0.1
    weights[rng.random((n, m)) < 0.2] = 0.0
    names = [f"w{b}" for b in range(m)]
    draw = get_rank_method(method).draw(family, weights, rng)
    if kind == "poisson":
        taus = np.full(m, 0.05)
        return build_poisson_summary(
            weights, draw, taus, names, family, mode=mode, expected_size=k
        )
    return build_bottomk_summary(weights, draw, k, names, family, mode=mode)


class TestSummaryRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
    @pytest.mark.parametrize("mode", ["colocated", "dispersed"])
    @pytest.mark.parametrize("method", ["shared_seed", "independent"])
    def test_bottomk_matrix(self, family, mode, method):
        summary = _summary(mode, method, family)
        assert roundtrip(summary).equals(summary)

    def test_independent_differences_no_seeds(self):
        summary = _summary(
            "dispersed", "independent_differences", ExponentialRanks()
        )
        back = roundtrip(summary)
        assert back.seeds is None
        assert back.equals(summary)

    @pytest.mark.parametrize("mode", ["colocated", "dispersed"])
    def test_poisson(self, mode):
        summary = _summary(mode, "shared_seed", IppsRanks(), kind="poisson")
        assert roundtrip(summary).equals(summary)

    def test_stream_summary_with_raw_keys(self):
        sketches = {
            "h1": stream_sketch([("a", 3.0), (("t", 2), 1.0), ("c", 4.0)]),
            "h2": stream_sketch([("a", 1.0), ("d", 2.0)]),
        }
        summary = build_summary_from_sketches(sketches, IppsRanks())
        back = roundtrip(summary)
        assert back.keys == summary.keys
        assert back.equals(summary)

    def test_empty_summary(self):
        weights = np.zeros((4, 2))
        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(IppsRanks(), weights, rng)
        summary = build_bottomk_summary(
            weights, draw, 2, ["a", "b"], IppsRanks(), mode="dispersed"
        )
        assert summary.n_union == 0
        assert roundtrip(summary).equals(summary)

    def test_estimates_survive_round_trip(self):
        from repro.core.aggregates import AggregationSpec
        from repro.engine.queries import QueryEngine

        summary = _summary("dispersed", "shared_seed", IppsRanks())
        spec = AggregationSpec("max", ("w0", "w1"))
        direct = QueryEngine(summary).estimate(spec)
        stored = QueryEngine(decode(encode(summary))).estimate(spec)
        assert stored == direct


class TestBundleRoundTrip:
    def test_bottomk_bundle(self):
        bundle = golden_bundle()
        assert roundtrip(bundle).equals(bundle)

    def test_poisson_bundle(self):
        rng = np.random.default_rng(2)
        sketches = {
            name: poisson_from_ranks(
                rng.random(20), rng.pareto(1.2, 20) + 0.1, tau=0.3
            )
            for name in ("p1", "p2")
        }
        bundle = SketchBundle(
            "poisson", sketches, ExponentialRanks(), hasher_salt=None
        )
        back = roundtrip(bundle)
        assert back.equals(bundle)
        assert back.hasher_salt is None

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="bundle kind"):
            SketchBundle(
                "poisson", {"h": stream_sketch([("a", 1.0)])}, IppsRanks()
            )

    def test_summary_from_decoded_bundle_matches(self):
        bundle = golden_bundle()
        assert decode(encode(bundle)).summary().equals(bundle.summary())


class TestErrorPaths:
    def test_unknown_version_refused(self):
        blob = bytearray(encode(stream_sketch([("a", 1.0)])))
        blob[4:6] = (FORMAT_VERSION + 1).to_bytes(2, "little")
        with pytest.raises(UnsupportedFormatError, match="version"):
            decode(bytes(blob))

    def test_bad_magic(self):
        blob = b"NOPE" + encode(stream_sketch([("a", 1.0)]))[4:]
        with pytest.raises(CodecError, match="magic"):
            decode(blob)

    def test_truncated(self):
        blob = encode(stream_sketch([("a", 1.0), ("b", 2.0)]))
        with pytest.raises(CodecError):
            decode(blob[: len(blob) // 2], verify=True)
        with pytest.raises(CodecError):
            decode(blob[:6])

    def test_corrupt_payload_caught_by_crc(self):
        blob = bytearray(encode(stream_sketch([("a", 1.0), ("b", 2.0)])))
        blob[-3] ^= 0xFF
        decode(bytes(blob))  # unverified decode does not check
        with pytest.raises(CodecError, match="checksum"):
            decode(bytes(blob), verify=True)

    def test_unknown_kind(self):
        from repro.store.codec import _BlobWriter

        blob = _BlobWriter("hologram", {}).render()
        with pytest.raises(CodecError, match="unknown blob kind"):
            decode(blob)

    def test_unsupported_object(self):
        with pytest.raises(CodecError, match="cannot serialize"):
            encode({"not": "supported"})

    def test_unsupported_key_type(self):
        sk = stream_sketch([("a", 1.0)])
        sk.keys = np.empty(1, dtype=object)
        sk.keys[0] = frozenset({1})
        with pytest.raises(CodecError, match="frozenset"):
            encode(sk)

    def test_truncated_key_buffer_raises_codec_error(self):
        # Even without CRC verification, a key buffer cut mid-entry must
        # surface as CodecError, never a raw struct.error.
        from repro.store.codec import _BlobReader, _BlobWriter, _pack_keys

        writer = _BlobWriter("bottomk_sketch", {"k": 1})
        packed = _pack_keys(["abcdefgh"])
        # cut inside the 4-byte string-length field
        writer._append("keys", packed[:3], {"enc": "obj", "count": 1})
        reader = _BlobReader(writer.render(), writable=False, verify=False)
        with pytest.raises(CodecError, match="truncated key buffer"):
            reader.keys("keys")


class TestZeroCopy:
    def test_decoded_arrays_are_views(self):
        sk = stream_sketch([("a", 3.0), ("b", 1.0)])
        back = decode(encode(sk))
        assert not back.ranks.flags.writeable
        assert back.ranks.base is not None

    def test_writable_copies(self):
        sk = stream_sketch([("a", 3.0), ("b", 1.0)])
        back = decode(encode(sk), writable=True)
        back.ranks[0] = -1.0  # must not raise

    def test_file_round_trip(self, tmp_path):
        sk = stream_sketch([("a", 3.0), ("b", 1.0)])
        path = tmp_path / "sk.cws"
        nbytes = write_file(path, sk)
        assert path.stat().st_size == nbytes
        assert read_file(path).equals(sk)


# -- hypothesis property: decode(encode(x)) == x over generated objects ------

_key_strategy = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.text(max_size=6),
    st.booleans(),
    st.binary(max_size=6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.tuples(st.integers(min_value=0, max_value=99), st.text(max_size=3)),
)

# zero is covered explicitly; positive weights stay out of the denormal
# range, where EXP ranks overflow to +inf with a RuntimeWarning
_weight_strategy = st.one_of(
    st.just(0.0), st.floats(min_value=1e-12, max_value=1e9)
)


@settings(deadline=None)
@given(
    items=st.dictionaries(_key_strategy, _weight_strategy, max_size=12),
    k=st.integers(min_value=1, max_value=5),
    family_ipps=st.booleans(),
    salt=st.integers(min_value=0, max_value=2**32),
)
def test_roundtrip_property_sketch_and_sampler(items, k, family_ipps, salt):
    family: RankFamily = IppsRanks() if family_ipps else ExponentialRanks()
    sampler = BottomKStreamSampler(k, family, KeyHasher(salt))
    sampler.process_stream(items.items())
    sketch = sampler.sketch()
    assert roundtrip(sketch).equals(sketch)
    resumed = roundtrip(sampler)
    assert resumed.sketch().equals(sketch)


@settings(deadline=None, max_examples=25)
@given(
    n=st.integers(min_value=1, max_value=25),
    m=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=6),
    mode_dispersed=st.booleans(),
    method=st.sampled_from(["shared_seed", "independent"]),
    family_ipps=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_roundtrip_property_summary(
    n, m, k, mode_dispersed, method, family_ipps, seed
):
    family = IppsRanks() if family_ipps else ExponentialRanks()
    summary = _summary(
        "dispersed" if mode_dispersed else "colocated",
        method, family, n=n, m=m, k=k, seed=seed,
    )
    assert roundtrip(summary).equals(summary)


# -- golden file: pins binary format v1 against drift ------------------------


class TestGoldenStoreFile:
    def test_golden_file_exists(self):
        assert GOLDEN.exists(), (
            "tests/data/golden_store_v1.cws is missing; regenerate with "
            "python tests/data/make_golden_store.py"
        )

    def test_golden_decodes_to_expected_objects(self):
        stored = decode(GOLDEN.read_bytes(), verify=True)
        assert stored.equals(golden_bundle())

    def test_encoder_reproduces_golden_bytes(self):
        """Today's encoder must emit exactly the checked-in v1 bytes.

        A failure here means the binary format (or the sampler/hash
        pipeline feeding it) drifted: either restore compatibility or bump
        FORMAT_VERSION, add a migration, and regenerate the golden file
        deliberately.
        """
        assert encode(golden_bundle()) == GOLDEN.read_bytes()

    def test_golden_header_is_version_1(self):
        raw = GOLDEN.read_bytes()
        assert raw[:4] == MAGIC
        assert int.from_bytes(raw[4:6], "little") == 1
