"""Chaos soak: single-node durability under seeded faults and a crash.

A deterministic mini chaos-monkey for the PR 5 durability contract: a
driver client with a seeded :class:`FaultPlan` pushes a mixed stream of
batches through drops, injected 5xx/429s, delays, and one black-hole;
mid-stream the daemon is SIGKILLed and restarted.  The invariants:

* every *acked* batch the daemon had rotated into the store before the
  kill survives the crash bit-exactly (``rotate()`` is the durability
  barrier — like PR 5's checkpoint tests, but under fault load);
* un-rotated acked batches die with the live window, and the restarted
  daemon's answer equals the offline engine over exactly the rotated
  prefix — never a silently wrong merge of partial state;
* client-side faults fire *before* the socket, so a failed ingest is
  provably un-applied: re-driving the lost and failed batches converges
  the daemon to the offline engine over the full acked set.

Everything is seeded — the same FaultPlan fires the same faults on the
same batches every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service import (
    FaultPlan,
    FaultRule,
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

NS = NamespaceConfig("soak", ("h1", "h2"), k=32, n_shards=2, salt=9)


class Clock:
    """Frozen: every batch lands in one minute bucket."""

    def __init__(self) -> None:
        self.now = 1_767_226_000.0

    def __call__(self) -> float:
        return self.now


def make_batch(index: int, n: int = 25):
    keys = [f"b{index}-k{i}" for i in range(n)]
    rng = np.random.default_rng(1000 + index)
    return keys, {
        "h1": (rng.pareto(1.3, n) + 0.05).tolist(),
        "h2": (rng.pareto(1.6, n) + 0.05).tolist(),
    }


def offline_estimate(batches, function: str = "max"):
    summarizer = NS.make_summarizer()
    for keys, weights in batches:
        summarizer.ingest_multi(
            keys, {name: np.asarray(w) for name, w in weights.items()}
        )
    return QueryEngine(summarizer.summary()).estimate(
        AggregationSpec(function, ("h1", "h2"))
    )


def spawn(root, clock) -> tuple[ServiceThread, ServiceClient]:
    config = ServiceConfig(
        store_root=str(root),
        namespaces=(NS,),
        port=0,
        compact_to=None,
        tick_s=3600.0,
    )
    thread = ServiceThread(config, clock=clock)
    thread.start()
    client = ServiceClient(port=thread.service.port, timeout=2.0, retries=1)
    client.wait_ready()
    return thread, client


@pytest.mark.parametrize("seed", [7, 1234])
def test_soak_survives_faults_and_a_crash(tmp_path, seed):
    clock = Clock()
    thread, clean = spawn(tmp_path / "store", clock)
    driver = ServiceClient(
        port=thread.service.port, timeout=1.0, retries=1,
        sleep=lambda _s: None,
    )
    plan = FaultPlan(seed, [
        FaultRule("drop", verb="/ingest", probability=0.2),
        FaultRule("error", verb="/ingest", status=503, probability=0.15),
        FaultRule("error", verb="/ingest", status=429, probability=0.1),
        FaultRule("blackhole", verb="/ingest", limit=1, probability=0.5),
        FaultRule("delay", verb="/ingest", delay_s=0.0, probability=0.3),
    ])
    driver.install_faults(plan)

    acked: list = []          # batches the daemon provably applied
    failed: list = []         # batches a fault kept off the wire
    flushed_upto = 0          # len(acked) at the last rotate()
    total = 30
    kill_at = 18

    def drive(index: int) -> None:
        nonlocal flushed_upto
        batch = make_batch(index)
        try:
            result = driver.ingest("soak", *batch, sync=True)
        except ServiceError:
            failed.append(batch)       # injected 5xx/429: never sent
        except OSError:
            failed.append(batch)       # drop/blackhole: never sent
        else:
            assert result["ok"]
            acked.append(batch)
        if index % 5 == 4:
            clean.rotate()             # durability barrier
            flushed_upto = len(acked)

    for index in range(kill_at):
        drive(index)
    assert plan.fired() > 0, "the seeded plan never fired; soak is vacuous"
    assert acked and failed, "need both outcomes for the invariants to bite"

    survivors = list(acked[:flushed_upto])
    lost = list(acked[flushed_upto:])
    thread.kill()
    driver.close()
    clean.close()

    # -- restart: only the rotated prefix survives, bit-exactly ---------------
    thread, clean = spawn(tmp_path / "store", clock)
    served = clean.estimate("soak", "max", ["h1", "h2"])
    assert not served.get("partial")
    if survivors:
        assert served["estimate"] == offline_estimate(survivors)
    else:
        assert served["empty"]

    # -- re-drive the lost tail, the failed batches, and the rest -------------
    for batch in lost + failed:
        result = clean.ingest("soak", *batch, sync=True)
        assert result["ok"]
    failed_before_restart = len(failed)
    driver = ServiceClient(
        port=thread.service.port, timeout=1.0, retries=1,
        sleep=lambda _s: None,
    )
    driver.install_faults(plan)  # same plan keeps firing, deterministically
    for index in range(kill_at, total):
        drive(index)
    for batch in failed[failed_before_restart:]:
        result = clean.ingest("soak", *batch, sync=True)
        assert result["ok"]
    clean.rotate()

    # -- convergence: the daemon equals the offline engine over everything ----
    everything = survivors + lost + failed[:failed_before_restart] + [
        make_batch(i) for i in range(kill_at, total)
    ]
    for function in ("max", "l1"):
        served = clean.estimate("soak", function, ["h1", "h2"])
        assert not served.get("partial")
        assert served["estimate"] == offline_estimate(
            everything, function
        ), f"{function} diverged after the soak"

    # the daemon's runtime tier survived the crash: revision moved on,
    # same schema, and the query cache is warm for a replay
    stats = clean.status()["runtime"]
    assert stats["schema_version"] == 1
    again = clean.estimate("soak", "max", ["h1", "h2"])
    assert again["cached"] is True

    driver.close()
    clean.close()
    thread.stop()


def test_soak_is_deterministic(tmp_path):
    """Two runs from the same seed fire the same faults on the same
    requests — the replay witness for any failure the soak ever finds."""

    def run(tag: str) -> list:
        clock = Clock()
        thread, clean = spawn(tmp_path / tag, clock)
        driver = ServiceClient(
            port=thread.service.port, timeout=1.0, retries=1,
            sleep=lambda _s: None,
        )
        plan = FaultPlan(99, [
            FaultRule("drop", verb="/ingest", probability=0.3),
            FaultRule("error", verb="/ingest", status=503, probability=0.2),
        ])
        driver.install_faults(plan)
        for index in range(12):
            try:
                driver.ingest("soak", *make_batch(index), sync=True)
            except (ServiceError, OSError):
                pass
        driver.close()
        clean.close()
        thread.stop()
        return plan.events

    assert run("a") == run("b")
