"""Value-for-value reproduction of the paper's worked examples (Figures 1–2).

These tests pin the whole pipeline — seeds → ranks → sketches → adjusted
weights — to the concrete numbers printed in the paper.  (Two typos in the
printed figures are documented in conftest.py and test_aggregates.py.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.summary import build_bottomk_summary
from repro.estimators.horvitz_thompson import ht_adjusted_weights
from repro.estimators.rank_conditioning import plain_rc_adjusted_weights
from repro.ranks.assignments import SharedSeedRanks, RankDraw
from repro.ranks.families import IppsRanks
from repro.sampling.bottomk import bottomk_from_ranks
from repro.sampling.poisson import calibrate_tau, poisson_from_ranks

from tests.conftest import (
    FIG1_KEYS,
    FIG1_RANKS,
    FIG1_SEEDS,
    FIG1_WEIGHTS,
    FIG2_WEIGHTS,
)

FAMILY = IppsRanks()


class TestFigure1Ranks:
    def test_rank_row(self):
        expected = [0.011, 0.075, 0.0583333, 0.046, 0.055, 0.037]
        np.testing.assert_allclose(FIG1_RANKS, expected, rtol=1e-4)


class TestFigure1Poisson:
    """Poisson samples with expected size k = 1, 2, 3 and AW-summaries."""

    @pytest.mark.parametrize(
        "k,expected_a_i1", [(1, 82.0), (2, 41.0), (3, 82.0 / 3.0)]
    )
    def test_sample_and_adjusted_weight(self, k, expected_a_i1):
        tau = calibrate_tau(FIG1_WEIGHTS, FAMILY, float(k))
        assert tau == pytest.approx(k / 82.0, rel=1e-6)
        sketch = poisson_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, tau)
        assert sketch.keys.tolist() == [0]  # sample is {i1} in all cases
        adjusted = ht_adjusted_weights(sketch, FAMILY)
        assert adjusted.values[0] == pytest.approx(expected_a_i1, rel=1e-3)

    def test_inclusion_probability_row_k1(self):
        """p(i) = min{1, w(i)·τ} row for k = 1 (paper: .24 .12 .15 .24 .12 .12)."""
        tau = 1.0 / 82.0
        p = FAMILY.cdf_array(FIG1_WEIGHTS, tau)
        np.testing.assert_allclose(
            p, [20 / 82, 10 / 82, 12 / 82, 20 / 82, 10 / 82, 10 / 82]
        )


class TestFigure1BottomK:
    """Bottom-k samples of size 1, 2, 3 and their RC AW-summaries."""

    def test_k1(self):
        sketch = bottomk_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, 1)
        assert [FIG1_KEYS[i] for i in sketch.keys] == ["i1"]
        assert sketch.threshold == pytest.approx(0.037)
        adjusted = plain_rc_adjusted_weights(sketch, FAMILY)
        assert adjusted.values[0] == pytest.approx(27.02, abs=0.01)

    def test_k2(self):
        sketch = bottomk_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, 2)
        assert [FIG1_KEYS[i] for i in sketch.keys] == ["i1", "i6"]
        assert sketch.threshold == pytest.approx(0.046)
        adjusted = plain_rc_adjusted_weights(sketch, FAMILY)
        np.testing.assert_allclose(adjusted.values, [21.74, 21.74], atol=0.01)

    def test_k3(self):
        sketch = bottomk_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, 3)
        assert [FIG1_KEYS[i] for i in sketch.keys] == ["i1", "i6", "i4"]
        assert sketch.threshold == pytest.approx(0.055)
        adjusted = plain_rc_adjusted_weights(sketch, FAMILY)
        # paper: a(i1) = 20.00, a(i6) = 18.18, a(i4) = 20.00
        np.testing.assert_allclose(
            adjusted.values, [20.0, 18.18, 20.0], atol=0.01
        )

    def test_subpopulation_estimates_from_paper(self):
        """Paper: J = {i2, i4, i6} (w(J)=40) estimates 0 / 21.74 / 38.18."""
        expected = {1: 0.0, 2: 21.74, 3: 38.18}
        selected = {1, 3, 5}  # positions of i2, i4, i6
        for k, value in expected.items():
            sketch = bottomk_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, k)
            adjusted = plain_rc_adjusted_weights(sketch, FAMILY)
            mask = np.zeros(6, dtype=bool)
            mask[list(selected)] = True
            assert adjusted.subpopulation(mask) == pytest.approx(value, abs=0.01)


class TestFigure2Ranks:
    """Shared-seed consistent IPPS rank table of Figure 2(B)."""

    def fig2_draw(self) -> RankDraw:
        ranks = np.empty((6, 3))
        for b in range(3):
            ranks[:, b] = FAMILY.ranks_array(FIG2_WEIGHTS[:, b], FIG1_SEEDS)
        return RankDraw(ranks, FIG1_SEEDS, SharedSeedRanks())

    def test_rank_table(self):
        draw = self.fig2_draw()
        inf = np.inf
        expected = np.array(
            [
                [0.0147, 0.011, 0.022],
                [inf, 0.075, 0.05],
                [0.07, 0.0583, 0.0467],
                [0.184, 0.046, inf],
                [0.055, inf, 0.0367],
                [0.037, 0.037, 0.037],
            ]
        )
        # paper prints r(1)(i3)=0.007 and r(3)(i3)=0.0047 — consistent with
        # its u(i3)=0.07 typo; with u(i3)=0.7 the values are 0.07 / 0.0467.
        np.testing.assert_allclose(draw.ranks, expected, rtol=2e-2)

    def test_bottom3_samples_match_paper(self):
        """Consistent ranks bottom-3 samples: w1: i3,i1,i6; w2: i1,i6,i4;
        w3: i3,i1,i5 — with the u(i3) typo fixed, w1's sample ordering
        changes accordingly (i1 before i6 before i3 at u(i3)=0.7)."""
        draw = self.fig2_draw()
        summary = build_bottomk_summary(
            FIG2_WEIGHTS, draw, 3, ["w1", "w2", "w3"], FAMILY, mode="colocated"
        )
        member_keys = {
            b: {FIG1_KEYS[p] for p, m in zip(summary.positions,
                                             summary.member[:, i]) if m}
            for i, b in enumerate(["w1", "w2", "w3"])
        }
        # w2's sample is unaffected by the i3 seed value in the top-3:
        assert member_keys["w2"] == {"i1", "i6", "i4"}
        # every sample has exactly 3 keys
        assert all(len(keys) == 3 for keys in member_keys.values())

    def test_coordination_shares_keys_across_samples(self):
        draw = self.fig2_draw()
        summary = build_bottomk_summary(
            FIG2_WEIGHTS, draw, 3, ["w1", "w2", "w3"], FAMILY, mode="colocated"
        )
        # Coordinated: union is much smaller than 9; i1 and i6 appear in all.
        assert summary.n_union <= 5
        i1_row = list(summary.positions).index(0)
        i6_row = list(summary.positions).index(5)
        assert summary.member[i1_row].all()
        assert summary.member[i6_row].all()
