"""Observability over live daemons: /metrics, /trace/recent, propagation.

A real single-node daemon and a real coordinator + workers cluster, all
on ephemeral ports.  The properties under test: every daemon serves a
parseable Prometheus exposition whose request counters are monotonic;
request handling emits the span taxonomy (parse / plan / cache-probe /
merge / ...); error bodies and :class:`ServiceError` carry the trace ID;
and a query through :class:`ClusterClient` yields one coordinator trace
with a ``slot-fetch`` child per contacted worker whose trace ID the
workers' own request spans share — the cross-daemon propagation path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import parse_prometheus_text
from repro.service import (
    ClusterClient,
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.service.cli import main as cli_main
from repro.service.cluster import (
    CoordinatorConfig,
    CoordinatorThread,
    slot_namespace_configs,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)
N_SLOTS = 4
SALT = 4  # splits the 4 slots 2/2 between two workers under HRW


def make_config(root, **overrides):
    base = dict(
        store_root=str(root),
        namespaces=(NS,),
        port=0,
        compact_to=None,
        tick_s=3600.0,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def event_batch(lo: int, n: int = 40):
    keys = [f"k{i}" for i in range(lo, lo + n)]
    rng = np.random.default_rng(lo + 1)
    return keys, {
        "h1": (rng.pareto(1.3, n) + 0.05).tolist(),
        "h2": (rng.pareto(1.5, n) + 0.05).tolist(),
    }


@pytest.fixture
def service(tmp_path):
    with ServiceThread(make_config(tmp_path / "store")) as thread:
        client = ServiceClient(port=thread.service.port)
        client.wait_ready()
        yield thread, client
        client.close()


class TestServiceMetrics:
    def test_metrics_scrape_is_valid_and_monotonic(self, service):
        _thread, client = service
        client.status()
        first = parse_prometheus_text(client.metrics())
        status_requests = (
            "repro_http_requests_total",
            (("path", "/status"), ("status", "200")),
        )
        assert first[status_requests] >= 1
        assert first[
            ("repro_http_request_seconds_count", (("path", "/status"),))
        ] >= 1
        client.status()
        second = parse_prometheus_text(client.metrics())
        assert second[status_requests] == first[status_requests] + 1

    def test_ingest_and_query_series_appear(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        client.estimate("web", "max", ["h1", "h2"])
        samples = parse_prometheus_text(client.metrics())
        assert samples[
            ("repro_ingest_events_total", (("namespace", "web"),))
        ] == len(keys)
        assert samples[
            ("repro_ingest_apply_seconds_count", (("namespace", "web"),))
        ] >= 1
        assert samples[
            ("repro_query_plan_seconds_count", (("namespace", "web"),))
        ] >= 1
        assert samples[
            ("repro_result_cache_lookups_total", (("outcome", "miss"),))
        ] >= 1
        # the queue/result-cache gauges are registered at boot, so one
        # scrape shows them even before any traffic touches them
        assert samples[("repro_ingest_queue_capacity", ())] == 64
        assert samples[("repro_ingest_queue_depth", ())] >= 0
        assert samples[("repro_result_cache_entries", ())] >= 1

    def test_unknown_path_folds_to_other_label(self, service):
        _thread, client = service
        with pytest.raises(ServiceError):
            client._request("GET", "/no/such/endpoint/abc123")
        with pytest.raises(ServiceError):
            client._request("GET", "/no/such/endpoint/def456")
        samples = parse_prometheus_text(client.metrics())
        assert samples[
            ("repro_http_requests_total",
             (("path", "other"), ("status", "404")))
        ] >= 2
        assert not any(
            "abc123" in str(key) for key in samples
        ), "unbounded 404 paths must not mint label values"

    def test_status_reports_registry_gauges(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        client.estimate("web", "max", ["h1", "h2"])
        status = client.status()
        assert status["queue"]["capacity"] == 64
        assert status["queue"]["depth"] >= 0
        assert status["result_cache"]["entries"] >= 1


class TestServiceTracing:
    def test_query_emits_span_taxonomy(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        client.estimate("web", "max", ["h1", "h2"])
        recent = client.trace_recent(limit=100)
        assert recent["ok"] and recent["dropped_log_writes"] == 0
        spans = recent["spans"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        root = by_name["POST /query"][0]
        for child_name in ("parse", "plan", "cache-probe", "engine-build"):
            child = by_name[child_name][0]
            assert child["trace"] == root["trace"]
            assert child["parent"] is not None
        assert by_name["plan"][0]["parent"] == root["span"]
        assert by_name["ingest-apply"][0]["tags"]["events"] == len(keys)

    def test_error_body_and_service_error_carry_trace(self, service):
        _thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.estimate("nope", "max", ["h1"])
        err = excinfo.value
        assert err.trace is not None
        assert f"[trace {err.trace}]" in str(err)
        trace_id = err.trace.split("-")[0]
        failed = [
            span for span in client.trace_recent(limit=100)["spans"]
            if span["trace"] == trace_id and span["status"] == "error"
        ]
        assert failed, "the failed request span must be in the ring"

    def test_trace_log_jsonl_sink(self, tmp_path):
        log_path = tmp_path / "trace.jsonl"
        config = make_config(tmp_path / "store", trace_log=str(log_path))
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            client.status()
            client.close()
        rows = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert any(row["name"] == "GET /status" for row in rows)
        assert all(
            {"trace", "span", "name", "duration_ms", "status"} <= set(row)
            for row in rows
        )

    def test_observability_disabled_serves_without_series(self, tmp_path):
        config = make_config(tmp_path / "store", observability=False)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            keys, weights = event_batch(0)
            client.ingest("web", keys, weights, sync=True)
            client.estimate("web", "max", ["h1", "h2"])
            samples = parse_prometheus_text(client.metrics())
            # boot-time gauges still render (registration is free); the
            # hot paths — request counters, latency histograms, ingest
            # and planner series — must have recorded nothing
            assert not any(
                key[0].startswith(("repro_http_", "repro_ingest_events",
                                   "repro_ingest_apply", "repro_query_",
                                   "repro_result_cache_lookups"))
                for key in samples
            ), "disabled registry must record no hot-path samples"
            assert client.trace_recent()["spans"] == []
            with pytest.raises(ServiceError) as excinfo:
                client.estimate("nope", "max", ["h1"])
            assert excinfo.value.trace is None
            client.close()


class ObsCluster:
    """A coordinator plus two joined workers on ephemeral ports."""

    def __init__(self, root) -> None:
        coordinator_config = CoordinatorConfig(
            root=str(root / "coordinator"),
            namespaces=(NS,),
            port=0,
            n_slots=N_SLOTS,
            replication=1,
            salt=SALT,
            heartbeat_s=3600.0,
        )
        self.coordinator = CoordinatorThread(coordinator_config)
        self.coordinator.start()
        self.client = ServiceClient(port=self.coordinator.service.port)
        self.workers: dict[str, ServiceThread] = {}
        self.worker_clients: dict[str, ServiceClient] = {}
        for worker_id in ("w1", "w2"):
            config = ServiceConfig(
                store_root=str(root / worker_id),
                namespaces=slot_namespace_configs(NS, N_SLOTS),
                port=0,
                compact_to=None,
                tick_s=3600.0,
            )
            thread = ServiceThread(config)
            thread.start()
            self.workers[worker_id] = thread
            worker_client = ServiceClient(port=thread.service.port)
            worker_client.wait_ready()
            self.worker_clients[worker_id] = worker_client
            self.client.cluster_join(
                worker_id, "127.0.0.1", thread.service.port
            )

    def close(self) -> None:
        self.client.close()
        self.coordinator.stop()
        for thread in self.workers.values():
            thread.stop()
        for worker_client in self.worker_clients.values():
            worker_client.close()


@pytest.fixture
def cluster(tmp_path):
    built = ObsCluster(tmp_path)
    yield built
    built.close()


class TestClusterObservability:
    def test_cluster_query_trace_and_metrics(self, cluster):
        keys, weights = event_batch(0, n=60)
        with ClusterClient.from_coordinator(
            port=cluster.coordinator.service.port
        ) as router:
            router.ingest("web", keys, weights, sync=True)
            served = router.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False

        # -- the coordinator trace fans out: one root, one slot-fetch
        # child per contacted worker, all under the same trace ID
        spans = cluster.client.trace_recent(limit=200)["spans"]
        roots = [span for span in spans if span["name"] == "POST /query"]
        assert roots, "the query must open a coordinator request span"
        root = roots[0]
        fetches = [
            span for span in spans
            if span["name"] == "slot-fetch"
            and span["trace"] == root["trace"]
        ]
        contacted = {span["tags"]["worker"] for span in fetches}
        assert contacted == {"w1", "w2"}  # SALT=4 splits slots 2/2
        assert len(fetches) == N_SLOTS
        assert all(span["parent"] is not None for span in fetches)
        merges = [
            span for span in spans
            if span["name"] == "merge" and span["trace"] == root["trace"]
        ]
        assert merges and merges[0]["tags"]["bundles"] == N_SLOTS

        # -- the workers joined the same trace via X-Repro-Trace
        for worker_id, worker_client in cluster.worker_clients.items():
            worker_spans = worker_client.trace_recent(limit=200)["spans"]
            joined = [
                span for span in worker_spans
                if span["trace"] == root["trace"]
                and span["name"] == "GET /bundle"
            ]
            assert joined, (
                f"worker {worker_id} must record its bundle fetch "
                f"under the coordinator's trace"
            )
            assert all(
                span["parent"] is not None for span in joined
            ), "the worker span is a child of the slot-fetch span"

        # -- both layers expose parseable Prometheus text
        coordinator_samples = parse_prometheus_text(
            cluster.client.metrics()
        )
        fetch_counts = {
            key: value
            for key, value in coordinator_samples.items()
            if key[0] == "repro_cluster_slot_fetch_seconds_count"
        }
        assert {
            dict(labels)["worker"] for _name, labels in fetch_counts
        } == {"w1", "w2"}
        assert coordinator_samples[
            ("repro_cluster_merge_seconds_count", ())
        ] >= 1
        for worker_client in cluster.worker_clients.values():
            worker_samples = parse_prometheus_text(worker_client.metrics())
            assert worker_samples[
                ("repro_http_requests_total",
                 (("path", "/bundle"), ("status", "200")))
            ] >= 1


class TestCliVerbs:
    def test_metrics_and_trace_verbs(self, service, capsys):
        _thread, client = service
        client.status()
        port = str(_thread.service.port)
        assert cli_main(["metrics", "--port", port]) == 0
        out = capsys.readouterr().out
        samples = parse_prometheus_text(out)
        assert any(
            key[0] == "repro_http_requests_total" for key in samples
        )
        assert cli_main(["trace", "--port", port, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "GET /status" in out
        assert cli_main(["trace", "--port", port, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["spans"]
