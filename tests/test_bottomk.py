"""Tests for bottom-k sketches: matrix builders and the stream sampler."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranks.families import IppsRanks
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import (
    BottomKStreamSampler,
    aggregate_stream,
    bottomk_from_ranks,
    bottomk_sketch_matrix,
)

INF = math.inf


def brute_force_bottomk(ranks: np.ndarray, k: int) -> list[int]:
    """Reference implementation: indices of the k smallest finite ranks."""
    order = sorted(
        (i for i in range(len(ranks)) if math.isfinite(ranks[i])),
        key=lambda i: ranks[i],
    )
    return order[:k]


class TestBottomKFromRanks:
    def test_simple_example(self):
        sketch = bottomk_from_ranks(
            np.array([0.5, 0.1, 0.9, 0.3]), np.array([1.0, 2.0, 3.0, 4.0]), k=2
        )
        assert sketch.keys.tolist() == [1, 3]
        assert sketch.ranks.tolist() == [0.1, 0.3]
        assert sketch.weights.tolist() == [2.0, 4.0]
        assert sketch.kth_rank == 0.3
        assert sketch.threshold == 0.5

    @given(
        n=st.integers(1, 40),
        k=st.integers(1, 12),
        seed=st.integers(0, 1000),
        zero_fraction=st.floats(0.0, 0.6),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, n, k, seed, zero_fraction):
        rng = np.random.default_rng(seed)
        weights = rng.pareto(1.5, n) + 0.01
        weights[rng.random(n) < zero_fraction] = 0.0
        seeds = rng.random(n).clip(1e-9, 1 - 1e-9)
        ranks = IppsRanks().ranks_array(weights, seeds)
        sketch = bottomk_from_ranks(ranks, weights, k)
        assert sketch.keys.tolist() == brute_force_bottomk(ranks, k)
        finite = int(np.isfinite(ranks).sum())
        if finite > k:
            sorted_finite = np.sort(ranks[np.isfinite(ranks)])
            assert sketch.threshold == sorted_finite[k]
            assert sketch.kth_rank == sorted_finite[k - 1]
        else:
            assert sketch.threshold == INF

    def test_fewer_keys_than_k(self):
        sketch = bottomk_from_ranks(
            np.array([0.2, INF]), np.array([5.0, 0.0]), k=3
        )
        assert sketch.keys.tolist() == [0]
        assert sketch.threshold == INF
        assert sketch.kth_rank == INF

    def test_exactly_k_keys(self):
        sketch = bottomk_from_ranks(
            np.array([0.2, 0.4]), np.array([5.0, 5.0]), k=2
        )
        assert len(sketch) == 2
        assert sketch.threshold == INF
        assert sketch.kth_rank == 0.4

    def test_empty_input(self):
        sketch = bottomk_from_ranks(np.array([INF]), np.array([0.0]), k=2)
        assert len(sketch) == 0
        assert sketch.threshold == INF

    def test_rejects_k_below_one(self):
        with pytest.raises(ValueError, match="k must be"):
            bottomk_from_ranks(np.array([0.1]), np.array([1.0]), k=0)

    def test_membership_and_rank_k_excluding(self):
        ranks = np.array([0.1, 0.2, 0.3, 0.4])
        sketch = bottomk_from_ranks(ranks, np.ones(4), k=2)
        assert 0 in sketch and 1 in sketch
        assert 2 not in sketch
        # member: r_k(I \ {i}) = r_{k+1}(I) = 0.3
        assert sketch.rank_k_excluding(0) == 0.3
        # non-member: r_k(I \ {i}) = r_k(I) = 0.2
        assert sketch.rank_k_excluding(3) == 0.2

    def test_seeds_carried_through(self):
        seeds = np.array([0.5, 0.1, 0.9])
        ranks = np.array([0.5, 0.1, 0.9])
        sketch = bottomk_from_ranks(ranks, np.ones(3), k=2, seeds=seeds)
        assert sketch.seeds.tolist() == [0.1, 0.5]

    def test_items_iterates_in_rank_order(self):
        sketch = bottomk_from_ranks(
            np.array([0.5, 0.1]), np.array([1.0, 2.0]), k=2
        )
        assert list(sketch.items()) == [(1, 0.1, 2.0), (0, 0.5, 1.0)]


class TestSketchMatrix:
    def test_one_sketch_per_column(self):
        rng = np.random.default_rng(0)
        ranks = rng.random((20, 3))
        weights = rng.random((20, 3)) + 0.1
        sketches = bottomk_sketch_matrix(ranks, weights, k=4)
        assert len(sketches) == 3
        for b, sketch in enumerate(sketches):
            assert sketch.keys.tolist() == brute_force_bottomk(ranks[:, b], 4)

    def test_shared_seed_vector_broadcast(self):
        rng = np.random.default_rng(1)
        ranks = rng.random((10, 2))
        weights = np.ones((10, 2))
        seeds = rng.random(10)
        sketches = bottomk_sketch_matrix(ranks, weights, k=3, seeds=seeds)
        for sketch in sketches:
            np.testing.assert_array_equal(sketch.seeds, seeds[sketch.keys])


class TestStreamSampler:
    def test_matches_matrix_mode_with_same_hasher(self):
        """The one-pass sampler must produce exactly the hash-defined sketch."""
        family = IppsRanks()
        hasher = KeyHasher(21)
        keys = [f"flow{i}" for i in range(200)]
        rng = np.random.default_rng(2)
        weights = rng.pareto(1.3, 200) + 0.05
        sampler = BottomKStreamSampler(k=10, family=family, hasher=hasher)
        sampler.process_stream(zip(keys, weights))
        stream_sketch = sampler.sketch()

        seeds = np.array(hasher.many(keys))
        ranks = family.ranks_array(weights, seeds)
        matrix_sketch = bottomk_from_ranks(ranks, weights, k=10)
        assert stream_sketch.keys.tolist() == [
            keys[i] for i in matrix_sketch.keys
        ]
        np.testing.assert_allclose(stream_sketch.ranks, matrix_sketch.ranks)
        assert stream_sketch.threshold == pytest.approx(matrix_sketch.threshold)
        assert stream_sketch.kth_rank == pytest.approx(matrix_sketch.kth_rank)

    def test_order_invariance(self):
        """Bottom-k content must not depend on stream order."""
        family = IppsRanks()
        items = [(f"k{i}", float(i % 7 + 1)) for i in range(50)]
        def sketch_of(order):
            sampler = BottomKStreamSampler(5, family, KeyHasher(3))
            sampler.process_stream(order)
            return sampler.sketch()
        forward = sketch_of(items)
        backward = sketch_of(list(reversed(items)))
        assert forward.keys.tolist() == backward.keys.tolist()
        assert forward.threshold == backward.threshold

    def test_zero_weight_keys_skipped(self):
        sampler = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
        sampler.process("dead", 0.0)
        sampler.process("alive", 1.0)
        assert sampler.sketch().keys.tolist() == ["alive"]

    def test_duplicate_key_rejected(self):
        sampler = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
        sampler.process("a", 1.0)
        with pytest.raises(ValueError, match="seen twice"):
            sampler.process("a", 2.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            BottomKStreamSampler(0, IppsRanks(), KeyHasher(0))

    def test_threshold_tracked_with_small_streams(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(5))
        sampler.process_stream([("a", 1.0), ("b", 2.0)])
        sketch = sampler.sketch()
        assert len(sketch) == 2
        assert sketch.threshold == INF

    def test_coordination_across_two_samplers(self):
        """Samplers over different assignments share sampled heavy keys."""
        family = IppsRanks()
        hasher = KeyHasher(9)
        keys = [f"k{i}" for i in range(500)]
        rng = np.random.default_rng(3)
        base = rng.pareto(1.2, 500) + 0.01
        w1 = base
        w2 = base * rng.lognormal(0, 0.05, 500)  # nearly identical weights
        s1 = BottomKStreamSampler(20, family, hasher)
        s2 = BottomKStreamSampler(20, family, hasher)
        s1.process_stream(zip(keys, w1))
        s2.process_stream(zip(keys, w2))
        shared = set(s1.sketch().keys.tolist()) & set(s2.sketch().keys.tolist())
        # With coordination and near-identical weights, overlap is large.
        assert len(shared) >= 15


class TestAggregateStream:
    def test_sums_per_key(self):
        totals = aggregate_stream([("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert totals == {"a": 4.0, "b": 2.0}

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative weight"):
            aggregate_stream([("a", -1.0)])

    def test_empty_stream(self):
        assert aggregate_stream([]) == {}
