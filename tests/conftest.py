"""Shared fixtures: the paper's worked examples and small random datasets.

Also registers the hypothesis profiles: ``ci`` (more examples, used by the
workflow via ``HYPOTHESIS_PROFILE=ci``) and ``dev`` (fewer examples for
fast local iteration, the default).  Tests that pin ``max_examples``
explicitly are unaffected.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.dataset import MultiAssignmentDataset

settings.register_profile("ci", max_examples=150, deadline=None)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# ---------------------------------------------------------------------------
# Figure 1 of the paper: a single weighted set with an explicit IPPS rank
# assignment, used to check sketches and adjusted weights value-for-value.
# ---------------------------------------------------------------------------

FIG1_KEYS = ["i1", "i2", "i3", "i4", "i5", "i6"]
FIG1_WEIGHTS = np.array([20.0, 10.0, 12.0, 20.0, 10.0, 10.0])
# NOTE: the paper prints u(i3) = 0.07, but every derived quantity in
# Figures 1 and 2 (r(i3) = 0.0583 = 0.7/12, the bottom-k samples, the AW
# summaries) is computed from u(i3) = 0.7 — a typo in the u row.  We use
# the value that makes the figure internally consistent.
FIG1_SEEDS = np.array([0.22, 0.75, 0.7, 0.92, 0.55, 0.37])
FIG1_RANKS = FIG1_SEEDS / FIG1_WEIGHTS

# ---------------------------------------------------------------------------
# Figure 2 of the paper: three weight assignments over six keys, with
# shared-seed consistent IPPS ranks from the same seeds as Figure 1.
# ---------------------------------------------------------------------------

FIG2_ASSIGNMENTS = ["w1", "w2", "w3"]
FIG2_WEIGHTS = np.array(
    [
        # w1,  w2,  w3
        [15.0, 20.0, 10.0],  # i1
        [0.0, 10.0, 15.0],  # i2
        [10.0, 12.0, 15.0],  # i3
        [5.0, 20.0, 0.0],  # i4
        [10.0, 0.0, 15.0],  # i5
        [10.0, 10.0, 10.0],  # i6
    ]
)


@pytest.fixture
def fig2_dataset() -> MultiAssignmentDataset:
    """The Figure 2 example dataset (6 keys, 3 assignments)."""
    return MultiAssignmentDataset(FIG1_KEYS, FIG2_ASSIGNMENTS, FIG2_WEIGHTS)


def make_random_dataset(
    n_keys: int = 25,
    n_assignments: int = 3,
    seed: int = 0,
    churn: float = 0.2,
    skew: float = 1.3,
) -> MultiAssignmentDataset:
    """Small skewed random dataset with some zero entries (churn)."""
    rng = np.random.default_rng(seed)
    weights = rng.pareto(skew, (n_keys, n_assignments)) * 10.0 + 0.1
    weights[rng.random((n_keys, n_assignments)) < churn] = 0.0
    # keep every key alive somewhere
    dead = ~(weights > 0).any(axis=1)
    weights[dead, 0] = 1.0
    keys = [f"key{i}" for i in range(n_keys)]
    names = [f"w{b + 1}" for b in range(n_assignments)]
    return MultiAssignmentDataset(keys, names, weights)


@pytest.fixture
def random_dataset() -> MultiAssignmentDataset:
    return make_random_dataset()


def mean_estimate(
    dataset: MultiAssignmentDataset,
    build_and_estimate,
    runs: int,
    seed: int = 0,
) -> float:
    """Average total estimate over repeated deterministic draws.

    ``build_and_estimate(rng)`` must perform one full draw → summary →
    estimate cycle and return the scalar estimate.
    """
    total = 0.0
    for run in range(runs):
        rng = np.random.default_rng([seed, run])
        total += build_and_estimate(rng)
    return total / runs
