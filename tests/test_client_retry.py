"""ServiceClient resilience: bounded retry, full-jitter backoff, /health.

The cluster's liveness story rests on three client-side contracts:

* **idempotent verbs retry, bounded** — every GET and the read-only
  query POSTs survive connection-level blips (refused, reset, dropped
  keep-alive) with at most ``retries`` retries and full-jitter
  exponential backoff, ``min(backoff_cap_s, backoff_s * 2**i) * rng()``;
* **non-idempotent verbs never retry** — re-sending ``POST /ingest``
  after an ambiguous failure could double-apply a batch and silently
  break exactness, and HTTP-level errors (a server answered) are never
  retried for any verb;
* **``GET /health`` is lock-free** — it answers while the window
  manager's lock is held, so a coordinator heartbeat never declares a
  busy-but-alive worker dead.

The retry policy is tested with injected fake connections, rng, and
sleep — no real sockets, no real time.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service import (
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)


class FakeResponse:
    def __init__(self, status=200, payload=None):
        self.status = status
        self.headers = {}
        self._body = json.dumps(payload or {"ok": True}).encode()

    def read(self):
        return self._body


class FakeConn:
    """One scripted connection: raises its outcome or serves a response."""

    def __init__(self, outcome):
        self.outcome = outcome
        self.requests = []

    def request(self, method, path, body=None, headers=None):
        self.requests.append((method, path))
        if isinstance(self.outcome, Exception):
            raise self.outcome

    def getresponse(self):
        return self.outcome

    def close(self):
        pass


def scripted_client(outcomes, retries=3, backoff_s=0.1, backoff_cap_s=0.4):
    """A client whose connections play out ``outcomes`` in order.

    Checkout timeouts are recorded on ``client.checkout_timeouts`` (the
    pool hands every call a connection built with the effective per-call
    timeout).
    """
    sleeps = []
    conns = [FakeConn(outcome) for outcome in outcomes]
    pool = iter(conns)
    client = ServiceClient(
        retries=retries,
        backoff_s=backoff_s,
        backoff_cap_s=backoff_cap_s,
        rng=lambda: 0.5,
        sleep=sleeps.append,
    )
    client.checkout_timeouts = []

    def checkout(timeout):
        client.checkout_timeouts.append(timeout)
        return next(pool)

    client._connection = checkout
    return client, conns, sleeps


class TestRetryPolicy:
    def test_get_retries_then_succeeds_with_jittered_backoff(self):
        client, conns, sleeps = scripted_client([
            ConnectionResetError("boom"),
            ConnectionRefusedError("boom"),
            FakeResponse(payload={"ok": True, "stopping": False}),
        ])
        assert client.liveness() == {"ok": True, "stopping": False}
        assert [len(c.requests) for c in conns] == [1, 1, 1]
        # full jitter at rng()=0.5: min(cap, 0.1 * 2**i) * 0.5
        assert sleeps == [0.05, 0.1]

    def test_backoff_is_capped(self):
        client, _conns, sleeps = scripted_client(
            [ConnectionResetError("boom")] * 4 + [FakeResponse()],
            retries=4,
        )
        assert client.status() == {"ok": True}
        assert sleeps == [0.05, 0.1, 0.2, 0.2]  # 0.4 cap * 0.5 jitter

    def test_retries_are_bounded(self):
        client, conns, sleeps = scripted_client(
            [ConnectionResetError("down")] * 10, retries=2
        )
        with pytest.raises(ConnectionResetError):
            client.status()
        assert sum(len(c.requests) for c in conns) == 3  # 1 try + 2 retries
        assert len(sleeps) == 2

    def test_query_posts_are_retried(self):
        client, _conns, sleeps = scripted_client([
            ConnectionResetError("blip"),
            FakeResponse(payload={"estimate": 4.0}),
        ])
        assert client.estimate("web", "max", ["h1"]) == {"estimate": 4.0}
        assert len(sleeps) == 1

    def test_ingest_is_never_retried(self):
        client, conns, sleeps = scripted_client([
            ConnectionResetError("ambiguous"),
            FakeResponse(),
        ])
        with pytest.raises(ConnectionResetError):
            client.ingest("web", ["k1"], {"h1": [1.0]})
        assert sleeps == []
        assert len(conns[1].requests) == 0  # the second conn was never used

    def test_http_errors_are_never_retried(self):
        client, conns, sleeps = scripted_client([
            FakeResponse(status=400, payload={"error": "bad request"}),
            FakeResponse(),
        ])
        with pytest.raises(ServiceError) as excinfo:
            client.status()
        assert excinfo.value.status == 400
        assert sleeps == []
        assert len(conns[1].requests) == 0

    def test_per_call_timeout_is_scoped_to_the_call(self):
        client, _conns, _sleeps = scripted_client(
            [FakeResponse(), FakeResponse()]
        )
        assert client.timeout == 30.0
        client.liveness(timeout=2.0)
        client.status()
        # the override selects the checked-out connection; the client's
        # own timeout (shared, read by other threads) never changes
        assert client.checkout_timeouts == [2.0, 30.0]
        assert client.timeout == 30.0


class TestThreadSafety:
    """One shared client across threads: the coordinator's usage pattern.

    The coordinator shares one :class:`ServiceClient` per worker between
    its heartbeat loop, query plane, and ingest router.  Before the
    connection pool, a per-call timeout override mutated the client's
    shared timeout and closed the one shared connection — a heartbeat
    could kill an in-flight bundle fetch, and interleaved
    request/getresponse pairs could hand one caller another caller's
    response body.  Every call now runs its full exchange on its own
    checked-out connection, so hammering mixed verbs with mixed timeout
    overrides must yield only correct, endpoint-matching answers.
    """

    def test_shared_client_concurrent_mixed_timeouts(self, tmp_path):
        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            namespaces=(NS,),
            port=0,
            compact_to=None,
            tick_s=3600.0,
        )
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port, timeout=10.0)
            client.wait_ready()
            errors = []
            start = threading.Barrier(6)

            def prober(override):
                try:
                    start.wait(timeout=10.0)
                    for _ in range(20):
                        health = client.liveness(timeout=override)
                        assert health["ok"] is True
                        assert "queue" not in health  # a /health body
                        status = client.status()
                        assert status["ok"] is True
                        assert "queue" in status  # a /status body
                except Exception as err:  # surfaced after the join
                    errors.append(err)

            threads = [
                threading.Thread(target=prober, args=(override,), daemon=True)
                for override in (None, None, 2.0, 3.0, 5.0, None)
            ]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=60.0)
            client.close()
            assert errors == []


class TestLockFreeHealth:
    def test_health_answers_while_manager_lock_is_held(self, tmp_path):
        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            namespaces=(NS,),
            port=0,
            compact_to=None,
            tick_s=3600.0,
        )
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port, timeout=5.0)
            client.wait_ready()
            manager = thread.service.manager
            hold = threading.Event()
            release = threading.Event()

            def holder():
                with manager.lock:
                    hold.set()
                    release.wait(timeout=30.0)

            blocker = threading.Thread(target=holder, daemon=True)
            blocker.start()
            try:
                assert hold.wait(timeout=10.0)
                # the probe must answer despite the held manager lock
                health = client.liveness(timeout=5.0)
                assert health["ok"] is True and health["stopping"] is False
            finally:
                release.set()
                blocker.join(timeout=10.0)
                client.close()
