"""Multicore execution layer: parallel output must be bit-identical to serial.

The whole point of the executor layer (`repro.engine.parallel`) is that it
changes *where* work runs, never *what* it produces: shards are
key-disjoint by construction and the merge is exact, so any worker count,
any batch split, and any executor mode must reproduce the serial
summarizer bit for bit — including through a checkpoint/resume cycle and
through the store's compaction and query-serving paths.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregationSpec
from repro.engine import (
    ProcessExecutor,
    Query,
    QueryEngine,
    SerialExecutor,
    ShardedSummarizer,
    ThreadExecutor,
    get_executor,
)
from repro.engine.parallel import (
    executor_scope,
    open_arrays,
    release_shipment,
    ship_arrays,
)
from repro.ranks import KeyHasher
from repro.store import SummaryStore
from repro.store.codec import decode, encode


# One pool per worker count for the whole module: pool startup is the
# expensive part, and reusing executors across hypothesis examples is
# exactly the supported usage (caller-owned instances stay open).
@pytest.fixture(scope="module")
def process_pools():
    pools = {n: ProcessExecutor(workers=n) for n in (1, 2, 4)}
    yield pools
    for pool in pools.values():
        pool.close()


def ingest_split(engine, assignment, keys, weights, splits):
    """Feed (keys, weights) as batches cut at the given split points."""
    bounds = [0, *sorted(splits), len(keys)]
    for lo, hi in zip(bounds, bounds[1:]):
        if hi > lo:
            engine.ingest(assignment, keys[lo:hi], weights[lo:hi])


def assert_same_sketches(a: ShardedSummarizer, b: ShardedSummarizer):
    left, right = a.sketches(), b.sketches()
    assert list(left) == list(right)
    for name in left:
        assert left[name].equals(right[name])


class TestExecutors:
    def test_spec_parsing(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor("serial"), SerialExecutor)
        thread = get_executor("thread:3:7")
        assert isinstance(thread, ThreadExecutor)
        assert (thread.workers, thread.queue_depth) == (3, 7)
        process = get_executor("process:2")
        assert isinstance(process, ProcessExecutor)
        assert (process.workers, process.queue_depth) == (2, 4)
        existing = SerialExecutor()
        assert get_executor(existing) is existing

    @pytest.mark.parametrize(
        "bad", ["", "fleet", "process:two", "serial:4", "thread:1:2:3"]
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(ValueError, match="invalid executor spec"):
            get_executor(bad)

    @pytest.mark.parametrize("spec", [None, "serial", "thread:2", "process:2"])
    def test_map_preserves_order(self, spec):
        with executor_scope(spec) as ex:
            assert ex.map(_square, range(20)) == [i * i for i in range(20)]

    def test_map_backpressure_is_chunked(self):
        # Payloads must be materialized lazily: with queue_depth=2 the
        # serial-equivalent window never pulls more than (depth) items
        # ahead of the results consumed so far.
        pulled = []

        def items():
            for i in range(10):
                pulled.append(i)
                yield i

        ex = ThreadExecutor(workers=1, queue_depth=2)
        try:
            results = ex.map(_square, items())
        finally:
            ex.close()
        assert results == [i * i for i in range(10)]
        assert pulled == list(range(10))

    def test_map_propagates_worker_errors(self):
        for spec in ("serial", "thread:2", "process:2"):
            with executor_scope(spec) as ex:
                with pytest.raises(ValueError, match="boom 3"):
                    ex.map(_explode_on_three, range(8))

    def test_executor_scope_ownership(self):
        owned = ThreadExecutor(workers=1)
        with executor_scope(owned) as ex:
            assert ex is owned
            ex.map(_square, [1])
        # caller-owned executors stay usable after the scope exits
        assert owned.map(_square, [2]) == [4]
        owned.close()


class TestSharedMemory:
    def test_ship_and_open_round_trip(self):
        arrays = {
            "keys": np.arange(100, dtype=np.int64),
            "weights": np.linspace(0.0, 1.0, 100),
        }
        descriptor, shm = ship_arrays(arrays)
        try:
            opened, handle = open_arrays(descriptor)
            assert np.array_equal(opened["keys"], arrays["keys"])
            assert opened["weights"].tobytes() == arrays["weights"].tobytes()
            del opened
            handle.close()
        finally:
            release_shipment(shm)

    def test_object_dtype_refused(self):
        bad = np.empty(2, dtype=object)
        bad[0], bad[1] = "a", "b"
        with pytest.raises(ValueError, match="object dtype"):
            ship_arrays({"keys": bad})

    def test_release_is_idempotent(self):
        descriptor, shm = ship_arrays({"x": np.zeros(4)})
        release_shipment(shm)
        release_shipment(shm)  # second release must not raise

    def test_shm_payload_equals_chunk_payload(self):
        """The shm form of a shard task is exactly the chunk form: the
        worker sees the pre-concatenated buffers and produces the same
        sketch (exercised here in-process)."""
        from repro.engine.parallel import (
            ShardTask,
            sample_shard_task,
            ship_chunks,
        )
        from repro.ranks import IppsRanks

        rng = np.random.default_rng(8)
        chunks = [
            (
                rng.integers(lo * 100, (lo + 1) * 100, 80).astype(np.int64),
                rng.pareto(1.3, 80) + 0.01,
            )
            for lo in range(3)
        ]
        family, hasher = IppsRanks(), KeyHasher(5)
        via_chunks = sample_shard_task(
            ShardTask(4, family, hasher, ("chunks", chunks))
        )
        descriptor, shm = ship_chunks(chunks)
        try:
            via_shm = sample_shard_task(
                ShardTask(4, family, hasher, ("shm", descriptor))
            )
        finally:
            release_shipment(shm)
        assert via_chunks.equals(via_shm)


key_arrays = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=400
)


class TestParallelIngestionEquivalence:
    # denormal draws can overflow u/w to +inf — a rank that is never
    # sampled, identically on both paths; the warning is expected noise
    @pytest.mark.filterwarnings("ignore:overflow encountered")
    @given(
        raw_keys=key_arrays,
        n_shards=st.integers(1, 6),
        workers=st.sampled_from((1, 2, 4)),
        splits=st.lists(st.integers(0, 400), max_size=4),
        salt=st.integers(0, 2**32),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_process_parallel_matches_serial(
        self, raw_keys, n_shards, workers, splits, salt, data, process_pools
    ):
        """Any worker count × any batch split == the serial summarizer."""
        keys = np.array(raw_keys, dtype=np.int64)
        weights = np.array(
            data.draw(
                st.lists(
                    st.floats(0.0, 1e6, allow_nan=False),
                    min_size=len(keys),
                    max_size=len(keys),
                )
            )
        )
        serial = ShardedSummarizer(
            k=8, assignments=["h1", "h2"], n_shards=n_shards,
            hasher=KeyHasher(salt),
        )
        parallel = ShardedSummarizer(
            k=8, assignments=["h1", "h2"], n_shards=n_shards,
            hasher=KeyHasher(salt), executor=process_pools[workers],
        )
        for engine in (serial, parallel):
            ingest_split(engine, "h1", keys, weights, splits)
            engine.ingest("h2", keys[: len(keys) // 2],
                          weights[: len(keys) // 2] * 2.0)
        assert_same_sketches(serial, parallel)
        serial_summary = serial.summary()
        parallel_summary = parallel.summary()
        assert encode(serial_summary) == encode(parallel_summary)

    @given(
        raw_keys=key_arrays,
        split=st.integers(0, 400),
        workers=st.sampled_from((2, 4)),
    )
    @settings(max_examples=8, deadline=None)
    def test_checkpoint_resume_under_process_executor(
        self, raw_keys, split, workers, process_pools
    ):
        """Interrupt mid-stream, restore under a process executor, finish:
        bit-identical to an uninterrupted serial run."""
        keys = np.array(raw_keys, dtype=np.int64)
        weights = (keys % 13).astype(float) + 0.5
        split = min(split, len(keys))

        uninterrupted = ShardedSummarizer(
            k=6, assignments=["h1"], n_shards=3, hasher=KeyHasher(9)
        )
        uninterrupted.ingest("h1", keys, weights)

        first_half = ShardedSummarizer(
            k=6, assignments=["h1"], n_shards=3, hasher=KeyHasher(9),
            executor=process_pools[workers],
        )
        if split:
            first_half.ingest("h1", keys[:split], weights[:split])
        blob = encode(first_half.checkpoint_state())
        resumed = ShardedSummarizer.from_checkpoint(
            decode(blob), executor=process_pools[workers]
        )
        if split < len(keys):
            resumed.ingest("h1", keys[split:], weights[split:])
        assert_same_sketches(uninterrupted, resumed)

    def test_mixed_and_object_keys_fall_back_to_pickling(self, process_pools):
        """Object/string/tuple keys cannot ride shared memory; the chunk
        pickling fallback must still match serial bit for bit."""
        keys = np.array(
            ["a", ("pair", 1), 7, 2.5, b"raw", True] * 20, dtype=object
        )
        weights = np.linspace(0.1, 5.0, len(keys))
        # aggregate per key first: object streams with repeats go through
        # ingest_stream-style aggregation upstream in real pipelines
        from repro.sampling import aggregate_stream

        totals = aggregate_stream(zip(keys.tolist(), weights.tolist()))
        agg_keys = np.empty(len(totals), dtype=object)
        for pos, key in enumerate(totals):
            agg_keys[pos] = key
        agg_weights = np.fromiter(totals.values(), dtype=float)

        serial = ShardedSummarizer(
            k=5, assignments=["x"], n_shards=4, hasher=KeyHasher(2)
        )
        parallel = ShardedSummarizer(
            k=5, assignments=["x"], n_shards=4, hasher=KeyHasher(2),
            executor=process_pools[2],
        )
        serial.ingest("x", agg_keys, agg_weights)
        parallel.ingest("x", agg_keys, agg_weights)
        assert_same_sketches(serial, parallel)

    def test_thread_executor_matches_serial(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 3000, 8000)
        weights = rng.pareto(1.4, 8000) + 0.01
        serial = ShardedSummarizer(
            k=32, assignments=["h"], n_shards=5, hasher=KeyHasher(4)
        )
        threaded = ShardedSummarizer(
            k=32, assignments=["h"], n_shards=5, hasher=KeyHasher(4),
            executor="thread:3",
        )
        serial.ingest("h", keys, weights)
        threaded.ingest("h", keys, weights)
        assert_same_sketches(serial, threaded)


def _fill_store(root, rng) -> SummaryStore:
    store = SummaryStore(root)
    for namespace, base in (("web", 0), ("api", 10**7)):
        for bucket in range(3):
            engine = ShardedSummarizer(
                k=64, assignments=["h1", "h2"], n_shards=2,
                hasher=KeyHasher(7),
            )
            keys = np.arange(base + bucket * 2000, base + (bucket + 1) * 2000)
            for name in ("h1", "h2"):
                engine.ingest(name, keys, rng.pareto(1.3, len(keys)) + 0.05)
            store.write(namespace, f"20260728T12{bucket:02d}",
                        engine.sketch_bundle())
    return store


class TestParallelStorePaths:
    @pytest.mark.parametrize("spec", ["thread:2", "process:2"])
    def test_parallel_compact_is_byte_identical(self, tmp_path, spec):
        serial_store = _fill_store(
            tmp_path / "serial", np.random.default_rng(11)
        )
        parallel_store = _fill_store(
            tmp_path / "parallel", np.random.default_rng(11)
        )
        serial_store.compact("web", to="hour")
        serial_store.compact("api", to="hour")
        parallel_store.compact("web", to="hour", executor=spec)
        parallel_store.compact("api", to="hour", executor=spec)
        serial_entries = [e.to_json() for e in serial_store.entries()]
        parallel_entries = [e.to_json() for e in parallel_store.entries()]
        assert serial_entries == parallel_entries
        assert serial_store.version() == parallel_store.version()
        for entry in serial_entries:
            assert (tmp_path / "serial" / entry["path"]).read_bytes() == (
                tmp_path / "parallel" / entry["path"]
            ).read_bytes()

    def test_serve_many_matches_sequential_engines(self, tmp_path):
        store = _fill_store(tmp_path / "store", np.random.default_rng(13))
        requests = {
            "web": [
                Query(AggregationSpec("max", ("h1", "h2"))),
                AggregationSpec("min", ("h1", "h2")),
            ],
            "api": [AggregationSpec("single", ("h1",))],
        }
        expected = {
            namespace: [
                result.estimate
                for result in QueryEngine.from_store(store, namespace).run(
                    queries
                )
            ]
            for namespace, queries in requests.items()
        }
        for spec in (None, "thread:2", "process:2"):
            answers = QueryEngine.serve_many(store, requests, executor=spec)
            assert list(answers) == list(requests)
            got = {
                namespace: [result.estimate for result in results]
                for namespace, results in answers.items()
            }
            assert got == expected

    def test_serve_many_accepts_root_path_and_buckets(self, tmp_path):
        store = _fill_store(tmp_path / "store", np.random.default_rng(17))
        spec = AggregationSpec("max", ("h1", "h2"))
        restricted = QueryEngine.serve_many(
            str(tmp_path / "store"),
            {"web": [spec]},
            buckets={"web": ["20260728T1200"]},
        )
        direct = QueryEngine.from_store(
            store, "web", buckets=["20260728T1200"]
        ).estimate(spec)
        assert restricted["web"][0].estimate == direct


class TestScalarBatchUnification:
    """process() is a single-element view of process_batch (cannot drift)."""

    def test_scalar_path_still_validates(self):
        from repro.ranks import IppsRanks
        from repro.sampling import BottomKStreamSampler

        sampler = BottomKStreamSampler(2, IppsRanks(), KeyHasher(1))
        sampler.process("a", 1.0)
        with pytest.raises(ValueError, match="seen twice"):
            sampler.process("a", 2.0)
        with pytest.raises(ValueError, match="non-finite weight"):
            sampler.process("b", float("inf"))
        with pytest.raises(ValueError, match="NaN key"):
            sampler.process(float("nan"), 1.0)
        sampler.process("zero", 0.0)  # zero weight: recorded, never sampled
        assert "zero" not in sampler.sketch()

    @given(
        n=st.integers(1, 60),
        salt=st.integers(0, 2**16),
        family_name=st.sampled_from(("ipps", "exp")),
    )
    @settings(max_examples=20, deadline=None)
    def test_scalar_equals_batch(self, n, salt, family_name):
        from repro.ranks import get_rank_family
        from repro.sampling import BottomKStreamSampler

        family = get_rank_family(family_name)
        rng = np.random.default_rng([n, salt])
        keys = rng.permutation(n * 3)[:n]
        weights = rng.pareto(1.3, n) + 0.01
        one_by_one = BottomKStreamSampler(4, family, KeyHasher(salt))
        for key, weight in zip(keys.tolist(), weights.tolist()):
            one_by_one.process(key, weight)
        batched = BottomKStreamSampler(4, family, KeyHasher(salt))
        batched.process_batch(keys, weights)
        assert one_by_one.sketch().equals(batched.sketch())


def _square(x: int) -> int:
    return x * x


def _explode_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("boom 3")
    return x
