"""Tests for combined-sample utilities and Poisson-summary estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.core.summary import build_poisson_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.horvitz_thompson import ht_from_summary
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks
from repro.sampling.bottomk import bottomk_from_ranks
from repro.sampling.combined import (
    fixed_size_bottomk,
    max_weight_sketch,
    union_positions,
)
from repro.sampling.poisson import calibrate_tau

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


class TestUnionPositions:
    def test_distinct_sorted(self):
        a = bottomk_from_ranks(np.array([0.1, 0.2, 0.3]), np.ones(3), 2)
        b = bottomk_from_ranks(np.array([0.3, 0.1, 0.2]), np.ones(3), 2)
        union = union_positions([a, b])
        assert union.tolist() == [0, 1, 2]

    def test_empty(self):
        assert union_positions([]).tolist() == []


class TestMaxWeightSketch:
    def test_lemma_42_structure(self):
        """The derived sketch is the bottom-k of (min ranks, max weights)
        and its keys all live in the union of the per-assignment sketches."""
        dataset = make_random_dataset(n_keys=50, seed=71)
        method = get_rank_method("shared_seed")
        rng = np.random.default_rng(1)
        draw = method.draw(FAMILY, dataset.weights, rng)
        k = 6
        derived = max_weight_sketch(draw.ranks, dataset.weights, k)
        per_assignment = [
            bottomk_from_ranks(draw.ranks[:, b], dataset.weights[:, b], k)
            for b in range(dataset.n_assignments)
        ]
        union = set(union_positions(per_assignment).tolist())
        assert set(derived.keys.tolist()) <= union
        # weights attached are the max weights
        expected = dataset.weights.max(axis=1)[derived.keys]
        np.testing.assert_allclose(derived.weights, expected)

    def test_min_rank_is_valid_rank_for_max_weight(self):
        """Lemma 4.1: r^min(i) ~ f_{w^max(i)} for consistent ranks —
        the CDF-transformed values must be uniform."""
        dataset = make_random_dataset(n_keys=400, seed=72, churn=0.0)
        method = get_rank_method("shared_seed")
        rng = np.random.default_rng(2)
        draw = method.draw(FAMILY, dataset.weights, rng)
        min_ranks = draw.ranks.min(axis=1)
        w_max = dataset.weights.max(axis=1)
        u = FAMILY.cdf_matrix(w_max, min_ranks)
        assert abs(u.mean() - 0.5) < 0.05
        assert abs(u.std() - math.sqrt(1 / 12)) < 0.05


class TestFixedSizeBottomK:
    def test_ell_at_least_k_and_budget_respected(self):
        dataset = make_random_dataset(n_keys=80, seed=73)
        rng = np.random.default_rng(3)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        k = 5
        ell, sketches = fixed_size_bottomk(draw.ranks, dataset.weights, k)
        assert ell >= k
        budget = k * dataset.n_assignments
        assert len(union_positions(sketches)) <= budget
        # ℓ is maximal: ℓ+1 would overflow (unless every key is sampled)
        bigger = [
            bottomk_from_ranks(draw.ranks[:, b], dataset.weights[:, b], ell + 1)
            for b in range(dataset.n_assignments)
        ]
        if len(union_positions(bigger)) <= budget:
            positive = (dataset.weights > 0).any(axis=1).sum()
            assert ell + 1 >= positive

    def test_coordination_grows_ell(self):
        """Coordinated sketches share keys, so a fixed budget affords a
        larger ℓ than independent sketches on similar assignments."""
        weights = np.tile(
            np.random.default_rng(4).pareto(1.2, 120)[:, None] + 0.05, (1, 3)
        )
        coord_draw = get_rank_method("shared_seed").draw(
            FAMILY, weights, np.random.default_rng(5)
        )
        ind_draw = get_rank_method("independent").draw(
            FAMILY, weights, np.random.default_rng(5)
        )
        ell_coord, _ = fixed_size_bottomk(coord_draw.ranks, weights, 8)
        ell_ind, _ = fixed_size_bottomk(ind_draw.ranks, weights, 8)
        assert ell_coord > ell_ind

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="budget"):
            fixed_size_bottomk(np.ones((4, 2)), np.ones((4, 2)), 3, budget=2)


class TestPoissonSummaryEstimators:
    def make_summary(self, dataset, method="shared_seed", seed=0, size=5.0):
        rng = np.random.default_rng(seed)
        draw = get_rank_method(method).draw(FAMILY, dataset.weights, rng)
        taus = np.array(
            [
                calibrate_tau(dataset.weights[:, b], FAMILY, size)
                for b in range(dataset.n_assignments)
            ]
        )
        return build_poisson_summary(
            dataset.weights, draw, taus, dataset.assignments, FAMILY,
            expected_size=int(size),
        )

    def test_ht_unbiased(self):
        dataset = make_random_dataset(n_keys=20, seed=74)
        exact = dataset.total("w1")
        total = 0.0
        runs = 3000
        for run in range(runs):
            summary = self.make_summary(dataset, seed=run)
            total += ht_from_summary(summary, "w1").total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_inclusive_over_poisson_unbiased(self):
        """The colocated inclusive estimator also runs on Poisson summaries
        (same template with τ thresholds)."""
        dataset = make_random_dataset(n_keys=20, seed=75)
        spec = AggregationSpec("max", tuple(dataset.assignments))
        from repro.core.aggregates import key_values

        exact = float(key_values(dataset, spec).sum())
        total = 0.0
        runs = 3000
        for run in range(runs):
            summary = self.make_summary(dataset, seed=run)
            total += colocated_estimator(summary, spec).total()
        assert total / runs == pytest.approx(exact, rel=0.12)

    def test_ht_requires_poisson(self):
        dataset = make_random_dataset(seed=76)
        from repro.core.summary import build_bottomk_summary

        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        summary = build_bottomk_summary(
            dataset.weights, draw, 4, dataset.assignments, FAMILY
        )
        with pytest.raises(ValueError, match="Poisson"):
            ht_from_summary(summary, "w1")
