"""Temporal query surface: sliding windows, decayed weights, exactness.

The acceptance property of PR 7's tentpole: sliding-window and
time-decayed estimates served by :class:`QueryPlanner` are
**bit-identical** to an offline :class:`~repro.engine.queries.QueryEngine`
built over the equivalently selected and decayed summaries — across
rotation / flush / restart / compaction interleavings driven by
hypothesis.  Also pins the partial-merge frontier reuse, the
persistent-cache version-token discipline (the PR's probe-race audit),
and the inclusive ``since``/``until`` intersection semantics of
``_live_in_window`` and ``SummaryStore.bundle_entries`` across mixed
granularities.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service.config import NamespaceConfig
from repro.service.planner import QueryPlanner
from repro.service.temporal import decay_factor, resolve_windows
from repro.service.windows import LIVE_PART, LiveWindowManager
from repro.store import SummaryStore
from repro.store.store import bucket_bounds, bucket_for

T0 = datetime(2026, 7, 28, 12, 0, 0, tzinfo=timezone.utc).timestamp()
NS = NamespaceConfig("web", ("h1", "h2"), k=8, n_shards=2, salt=21)

_weights = st.floats(
    min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False
)


class Clock:
    def __init__(self) -> None:
        self.now = T0

    def __call__(self) -> float:
        return self.now


def build_lifecycle(root, plan, clock):
    """Replay a lifecycle plan; returns the final manager."""
    manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
    for op in plan:
        if op[0] == "ingest":
            _tag, keys, w1, w2 = op
            manager.ingest("web", keys, {
                "h1": np.asarray(w1, dtype=float),
                "h2": np.asarray(w2, dtype=float),
            })
        elif op[0] == "advance":
            clock.now += 60.0
        elif op[0] == "rotate":
            manager.rotate()
        elif op[0] == "flush":
            manager.rotate(force=True)
        elif op[0] == "restart":
            manager.checkpoint()
            manager = LiveWindowManager(
                SummaryStore(root, create=False), (NS,), clock=clock
            )
        elif op[0] == "compact":
            manager.compact(to=op[1])
    return manager


@st.composite
def lifecycle_plans(draw):
    """Ingests across up to 4 minute buckets with rotations, restarts,
    flushes, and compactions interleaved (keys bucket-disjoint)."""
    ops = []
    n_segments = draw(st.integers(2, 4))
    for segment in range(n_segments):
        n = draw(st.integers(1, 8))
        ids = draw(st.lists(st.integers(0, 30), min_size=n, max_size=n))
        keys = [segment * 100_000 + key_id for key_id in ids]
        w1 = draw(st.lists(_weights, min_size=n, max_size=n))
        w2 = draw(st.lists(_weights, min_size=n, max_size=n))
        ops.append(("ingest", keys, w1, w2))
        if draw(st.booleans()):
            ops.append(("flush",))
        if draw(st.booleans()):
            ops.append(("restart",))
        if segment < n_segments - 1:
            ops.append(("advance",))
            if draw(st.booleans()):
                ops.append(("rotate",))
            if draw(st.booleans()):
                ops.append(("compact", draw(st.sampled_from(["hour"]))))
    return ops


def offline_span_engine(manager, span_lo, span_hi, decay_s, anchor):
    """Independent reference: select + scale + merge straight off the store.

    Re-selects the namespace's bundle artifacts (masking the live
    window's own flush artifact), intersects half-open bucket bounds
    with ``[span_lo, span_hi)``, applies the per-bucket decay factor,
    and merges — the offline construction the planner's served answers
    must match bit for bit.
    """
    window = manager._window("web")
    bundles, scales = [], []
    for entry in manager.store.bundle_entries("web"):
        if window.events and (
            entry.bucket == window.bucket and entry.part == LIVE_PART
        ):
            continue
        lo, hi = bucket_bounds(entry.bucket)
        if hi <= span_lo or lo >= span_hi:
            continue
        bundles.append(manager.store.load(entry))
        scales.append(
            1.0 if decay_s is None else decay_factor(lo, anchor, decay_s)
        )
    live = manager.live_bundle("web")
    if live is not None:
        lo, hi = bucket_bounds(window.bucket)
        if not (hi <= span_lo or lo >= span_hi):
            bundles.append(live)
            scales.append(
                1.0 if decay_s is None
                else decay_factor(lo, anchor, decay_s)
            )
    if not bundles:
        return None
    return QueryEngine.from_bundles(bundles, scales=scales)


def data_span(manager):
    window = manager._window("web")
    spans = [
        bucket_bounds(entry.bucket)
        for entry in manager.store.bundle_entries("web")
    ]
    if window.events:
        spans.append(bucket_bounds(window.bucket))
    return min(lo for lo, _ in spans), max(hi for _, hi in spans)


class TestWindowSeriesExactness:
    @settings(deadline=None, max_examples=30)
    @given(plan=lifecycle_plans(), decayed=st.booleans())
    def test_rows_match_offline_engines(
        self, tmp_path_factory, plan, decayed
    ):
        clock = Clock()
        manager = build_lifecycle(
            tmp_path_factory.mktemp("svc"), plan, clock
        )
        planner = QueryPlanner(manager)
        spec = AggregationSpec("max", ("h1", "h2"))
        result = planner.window_series(
            "web", "max", ("h1", "h2"), window="2m", step="1m",
            decay="90s" if decayed else None,
        )
        lo, hi = data_span(manager)
        expected_windows = resolve_windows(lo, hi, 120.0, 60.0)
        assert len(result["windows"]) == len(expected_windows)
        for row, (w_lo, w_hi) in zip(result["windows"], expected_windows):
            assert row["start"] == w_lo.isoformat()
            assert row["end"] == w_hi.isoformat()
            reference = offline_span_engine(
                manager, w_lo, w_hi,
                90.0 if decayed else None, w_hi,
            )
            if reference is None:
                assert row["estimate"] is None and row["empty"]
            else:
                assert row["estimate"] == reference.estimate(spec), (
                    f"window [{w_lo}, {w_hi}) diverged under plan {plan!r}"
                )

    @settings(deadline=None, max_examples=20)
    @given(plan=lifecycle_plans(), half_life=st.sampled_from([30.0, 600.0]))
    def test_decayed_estimate_matches_offline(
        self, tmp_path_factory, plan, half_life
    ):
        clock = Clock()
        manager = build_lifecycle(
            tmp_path_factory.mktemp("svc"), plan, clock
        )
        planner = QueryPlanner(manager)
        served = planner.estimate(
            "web", "l1", ("h1", "h2"), decay=half_life
        )
        lo, hi = data_span(manager)
        anchor = served["anchor"]
        assert anchor == hi.timestamp()  # default: end of the data span
        reference = offline_span_engine(manager, lo, hi, half_life, anchor)
        assert served["estimate"] == reference.estimate(
            AggregationSpec("l1", ("h1", "h2"))
        ), f"decayed l1 diverged under plan {plan!r}"

    def test_no_decay_means_undecayed_answer(self, tmp_path):
        clock = Clock()
        manager = LiveWindowManager(
            SummaryStore(tmp_path / "s"), (NS,), clock=clock
        )
        for bucket in range(3):
            keys = [bucket * 1000 + i for i in range(5)]
            manager.ingest("web", keys, {
                "h1": np.arange(1.0, 6.0), "h2": np.arange(5.0, 0.0, -1.0),
            })
            clock.now += 60.0
        manager.rotate()
        planner = QueryPlanner(manager)
        plain = planner.estimate("web", "max", ("h1", "h2"))
        huge = planner.estimate(
            "web", "max", ("h1", "h2"), decay="365d",
            anchor=clock.now,
        )
        # an (almost) infinite half-life decays nothing appreciable
        assert huge["estimate"] == pytest.approx(
            plain["estimate"], rel=1e-4
        )
        short = planner.estimate(
            "web", "max", ("h1", "h2"), decay="30s", anchor=clock.now,
        )
        assert short["estimate"] < plain["estimate"]


class TestPartialFrontier:
    def _manager_with_buckets(self, root, n_buckets=6):
        clock = Clock()
        manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
        for bucket in range(n_buckets):
            keys = [bucket * 1000 + i for i in range(10)]
            rng = np.random.default_rng(bucket)
            manager.ingest("web", keys, {
                "h1": rng.pareto(1.3, 10) + 0.1,
                "h2": rng.pareto(1.5, 10) + 0.1,
            })
            clock.now += 60.0
        manager.rotate()
        return manager

    def test_overlapping_windows_share_bucket_partials(self, tmp_path):
        manager = self._manager_with_buckets(tmp_path / "s")
        planner = QueryPlanner(manager)
        planner.window_series(
            "web", "max", ("h1", "h2"), window="3m", step="1m"
        )
        # 6 stored buckets, each built exactly once; every additional
        # window covering a bucket hits the frontier instead.
        assert planner.stats["partial_builds"] == 6
        assert planner.stats["partial_hits"] > 0
        assert planner.stats["window_queries"] == 1

    def test_series_result_is_version_cached(self, tmp_path):
        manager = self._manager_with_buckets(tmp_path / "s")
        planner = QueryPlanner(manager)
        first = planner.window_series(
            "web", "max", ("h1", "h2"), window="2m", step="1m"
        )
        assert first["cached"] is False
        second = planner.window_series(
            "web", "max", ("h1", "h2"), window="2m", step="1m"
        )
        assert second["cached"] is True
        assert second["windows"] == first["windows"]
        # an ingest moves the version; the cached row must not serve
        manager.ingest("web", [999_999], {
            "h1": np.array([1.0]), "h2": np.array([2.0]),
        })
        third = planner.window_series(
            "web", "max", ("h1", "h2"), window="2m", step="1m"
        )
        assert third["cached"] is False
        assert third["version"] != first["version"]

    def test_frontier_evicts_at_capacity(self, tmp_path):
        manager = self._manager_with_buckets(tmp_path / "s", n_buckets=5)
        planner = QueryPlanner(manager, max_cached_partials=3)
        planner.window_series(
            "web", "max", ("h1", "h2"), window="2m", step="1m"
        )
        assert len(planner._partials) <= 3
        assert planner.stats["partial_builds"] == 5


class TestProbeVersionDiscipline:
    """PR 7 satellite: audit the persistent-cache probe for stale serves.

    The invariant: a probe hit is always an answer computed under
    exactly the version token embedded in its key, and the token the
    caller observes in the answer is that same version — even when the
    namespace mutates between the fast-path probe and the plan.
    """

    def _manager(self, root):
        clock = Clock()
        manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
        manager.ingest("web", [1, 2, 3], {
            "h1": np.array([1.0, 2.0, 3.0]),
            "h2": np.array([3.0, 2.0, 1.0]),
        })
        return manager, clock

    def test_mutation_between_probe_and_plan_yields_fresh_answer(
        self, tmp_path
    ):
        manager, _clock = self._manager(tmp_path / "s")
        planner = QueryPlanner(manager)
        original_probe = planner._probe
        mutated = {"done": False}

        def probe_then_mutate(key):
            hit = original_probe(key)
            if not mutated["done"]:
                mutated["done"] = True
                # Adversarial interleaving: the namespace moves right
                # after the fast-path probe misses.
                manager.ingest("web", [100], {
                    "h1": np.array([50.0]), "h2": np.array([50.0]),
                })
            return hit

        planner._probe = probe_then_mutate
        answer = planner.estimate("web", "max", ("h1", "h2"))
        planner._probe = original_probe
        # The served answer must reflect a version observed *after* the
        # mutation (plan re-reads under the manager lock) — and must
        # include the mutated data.
        assert answer["version"] == manager.version("web")
        reference = offline_span_engine(
            manager, *data_span(manager), None, None
        )
        assert answer["estimate"] == reference.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_version_tokens_never_repeat_across_mutations(self, tmp_path):
        manager, clock = self._manager(tmp_path / "s")
        seen = {manager.version("web")}
        for step in range(4):
            manager.ingest("web", [1000 + step], {
                "h1": np.array([1.0]), "h2": np.array([1.0]),
            })
            token = manager.version("web")
            assert token not in seen, "version token reused after mutation"
            seen.add(token)
        clock.now += 60.0
        manager.rotate()
        token = manager.version("web")
        assert token not in seen
        seen.add(token)
        manager.compact(to="hour")
        assert manager.version("web") not in seen

    def test_cached_answer_replays_identically_across_restart(
        self, tmp_path
    ):
        manager, clock = self._manager(tmp_path / "s")
        planner = QueryPlanner(manager)
        first = planner.estimate("web", "max", ("h1", "h2"))
        assert first["cached"] is False
        # clean shutdown -> new manager + planner over the same store
        manager.checkpoint()
        manager2 = LiveWindowManager(
            SummaryStore(tmp_path / "s", create=False), (NS,), clock=clock
        )
        planner2 = QueryPlanner(manager2)
        replay = planner2.estimate("web", "max", ("h1", "h2"))
        assert replay["cached"] is True
        assert replay["estimate"] == first["estimate"]
        assert replay["version"] == first["version"]


class TestIntersectionSemantics:
    """Pin the inclusive-``since``/``until`` half-open intersection rules
    shared by ``QueryPlanner._live_in_window`` and
    ``SummaryStore.bundle_entries`` across mixed granularities."""

    def _store_with_mixed_granularities(self, root):
        """Minute buckets 12:00..12:02 compacted into hour 12, plus a
        stray minute bucket at 13:30 — a store holding hour AND minute
        artifacts side by side."""
        clock = Clock()
        manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
        for bucket in range(3):
            keys = [bucket * 1000 + i for i in range(4)]
            manager.ingest("web", keys, {
                "h1": np.arange(1.0, 5.0), "h2": np.arange(4.0, 0.0, -1.0),
            })
            clock.now += 60.0
        manager.rotate()
        manager.compact(to="hour")
        clock.now = T0 + 90 * 60.0  # 13:30
        manager.ingest("web", [9000, 9001], {
            "h1": np.array([1.0, 2.0]), "h2": np.array([2.0, 1.0]),
        })
        clock.now += 60.0
        manager.rotate()
        return manager

    def test_minute_window_selects_covering_hour_rollup(self, tmp_path):
        manager = self._store_with_mixed_granularities(tmp_path / "s")
        store = manager.store
        buckets = {e.bucket for e in store.bundle_entries("web")}
        assert "20260728T12" in buckets          # the hour rollup
        assert "20260728T1330" in buckets        # the stray minute
        # a minute-granularity window inside the hour still selects the
        # hour rollup (span intersection, not id-prefix matching)
        selected = store.bundle_entries(
            "web", since="20260728T1201", until="20260728T1201"
        )
        assert [e.bucket for e in selected] == ["20260728T12"]

    def test_half_open_edges(self, tmp_path):
        manager = self._store_with_mixed_granularities(tmp_path / "s")
        store = manager.store
        # until=12:59 (inclusive) -> [.., 13:00): hour 12 in, 13:30 out
        selected = store.bundle_entries("web", until="20260728T1259")
        assert {e.bucket for e in selected} == {"20260728T12"}
        # since=13:00 -> [13:00, ..): hour 12's span [12:00,13:00) is
        # disjoint from it (half-open), minute 13:30 is in
        selected = store.bundle_entries("web", since="20260728T1300")
        assert {e.bucket for e in selected} == {"20260728T1330"}
        # since=12:59 keeps the hour: its span reaches past 12:59:00
        selected = store.bundle_entries("web", since="20260728T1259")
        assert {e.bucket for e in selected} == {
            "20260728T12", "20260728T1330",
        }

    def test_bundle_entries_spanning_datetime_bounds(self, tmp_path):
        manager = self._store_with_mixed_granularities(tmp_path / "s")
        store = manager.store
        lo = datetime(2026, 7, 28, 12, 30, tzinfo=timezone.utc)
        hi = datetime(2026, 7, 28, 13, 31, tzinfo=timezone.utc)
        selected = store.bundle_entries_spanning("web", lo, hi)
        assert {e.bucket for e in selected} == {
            "20260728T12", "20260728T1330",
        }
        # end exactly at a bucket's start excludes it (half-open)
        selected = store.bundle_entries_spanning(
            "web", end=datetime(2026, 7, 28, 12, 0, tzinfo=timezone.utc)
        )
        assert selected == []
        # start exactly at a bucket's end excludes it too
        selected = store.bundle_entries_spanning(
            "web", start=datetime(2026, 7, 28, 13, 31, tzinfo=timezone.utc)
        )
        assert selected == []

    @pytest.mark.parametrize("live_bucket,since,until,expect", [
        # live minute window 12:34 against assorted selections
        ("20260728T1234", None, None, True),
        ("20260728T1234", "20260728T1234", "20260728T1234", True),
        # hour-granularity since covering the live minute
        ("20260728T1234", "20260728T12", None, True),
        # until before the window starts
        ("20260728T1234", None, "20260728T1233", False),
        # since after the window ends (half-open: 12:35 is out)
        ("20260728T1234", "20260728T1235", None, False),
        # day granularity covers everything that day
        ("20260728T1234", "20260728", "20260728", True),
        # live hour window vs a minute-granularity query inside it
        ("20260728T12", "20260728T1215", "20260728T1215", True),
        ("20260728T12", "20260728T1300", None, False),
    ])
    def test_live_in_window_pinning(
        self, tmp_path, live_bucket, since, until, expect
    ):
        manager = LiveWindowManager(
            SummaryStore(tmp_path / "s"), (NS,), clock=Clock()
        )
        planner = QueryPlanner(manager)
        assert (
            planner._live_in_window(live_bucket, since, until) is expect
        )

    def test_planner_agrees_with_store_on_the_same_edges(self, tmp_path):
        """The two intersection implementations pin each other: a stored
        bucket is selected by bundle_entries iff _live_in_window accepts
        the same bucket id for the same since/until."""
        manager = self._store_with_mixed_granularities(tmp_path / "s")
        planner = QueryPlanner(manager)
        store = manager.store
        all_buckets = [e.bucket for e in store.bundle_entries("web")]
        edges = [None, "20260728T1200", "20260728T1259", "20260728T1300",
                 "20260728T12", "20260728T1330", "20260728"]
        for since in edges:
            for until in edges:
                selected = {
                    e.bucket
                    for e in store.bundle_entries(
                        "web", since=since, until=until
                    )
                }
                for bucket in all_buckets:
                    assert (
                        bucket in selected
                    ) == planner._live_in_window(bucket, since, until)
