"""Self-healing cluster: promotion, re-replication, anti-entropy, faults.

The contract under test extends PR 8's exactness bar to the repair
machinery: every answer served during and after a repair is bit-exact
against the offline engine or loudly ``partial`` — and with
``replication=2`` a SIGKILLed primary is detected, promoted to failed,
and re-replicated onto survivors *autonomously*, no operator join.

Time is a frozen :class:`Clock` everywhere except the acceptance test,
so the ``fail_after_s`` grace window and the repair cadence are driven
deterministically; the acceptance test runs the real background loops
against the wall clock to prove the loop closes without any test-side
driving.
"""

from __future__ import annotations

import shutil
import time

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service import (
    ClusterClient,
    ClusterError,
    FaultPlan,
    FaultRule,
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)
from repro.service.cluster import (
    CoordinatorConfig,
    CoordinatorThread,
    slot_namespace_configs,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)
N_SLOTS = 4
SALT = 4  # splits the 4 slots 2/2 between w1 and w2 (see PR 8 suite)


class Clock:
    def __init__(self) -> None:
        self.now = 1_767_226_000.0

    def __call__(self) -> float:
        return self.now


class Cluster:
    """Coordinator + N workers with the repair loop on manual ticks."""

    def __init__(
        self,
        root,
        n_workers: int,
        replication: int = 2,
        fail_after_s: float = 30.0,
        **config_overrides,
    ) -> None:
        self.clock = Clock()
        self.workers: dict[str, ServiceThread] = {}
        self.killed: set[str] = set()
        self.root = root
        settings = dict(
            root=str(root / "coordinator"),
            namespaces=(NS,),
            port=0,
            n_slots=N_SLOTS,
            replication=replication,
            salt=SALT,
            heartbeat_s=3600.0,  # probes driven by hand
            probe_timeout_s=2.0,
            fail_after_s=fail_after_s,
            repair_interval_s=0.0,  # ticks driven by hand
        )
        settings.update(config_overrides)
        config = CoordinatorConfig(**settings)
        self.coordinator = CoordinatorThread(config, clock=self.clock)
        self.coordinator.start()
        self.client = ServiceClient(port=self.coordinator.service.port)
        for i in range(1, n_workers + 1):
            self.add_worker(f"w{i}")

    @property
    def service(self):
        return self.coordinator.service

    def spawn_worker(self, worker_id: str) -> ServiceThread:
        config = ServiceConfig(
            store_root=str(self.root / worker_id),
            namespaces=slot_namespace_configs(NS, N_SLOTS),
            port=0,
            compact_to=None,
            tick_s=3600.0,
        )
        thread = ServiceThread(config, clock=self.clock)
        thread.start()
        self.workers[worker_id] = thread
        with ServiceClient(port=thread.service.port) as probe:
            probe.wait_ready()
        return thread

    def add_worker(self, worker_id: str) -> dict:
        thread = self.spawn_worker(worker_id)
        self.killed.discard(worker_id)
        return self.client.cluster_join(
            worker_id, "127.0.0.1", thread.service.port
        )

    def kill(self, worker_id: str) -> None:
        self.workers[worker_id].kill()
        self.killed.add(worker_id)

    def fail(self, worker_id: str) -> dict:
        """SIGKILL + heartbeat + grace window + one tick: promote."""
        self.kill(worker_id)
        self.service._heartbeat_round()
        self.clock.now += self.service.config.fail_after_s + 1.0
        return self.service.repairs.tick()

    def settle(self, max_ticks: int = 6) -> dict:
        """Tick until the journal stops moving; return the last view."""
        for _ in range(max_ticks):
            tick = self.service.repairs.tick()
            if not (tick["enqueued"] or tick["done"] or tick["requeued"]):
                break
        return self.service.repairs.view()

    def close(self) -> None:
        self.client.close()
        self.coordinator.stop()
        for worker_id, thread in self.workers.items():
            if worker_id not in self.killed:
                thread.stop()


@pytest.fixture
def healing3(tmp_path):
    cluster = Cluster(tmp_path, n_workers=3, replication=2)
    yield cluster
    cluster.close()


@pytest.fixture
def fragile2(tmp_path):
    cluster = Cluster(tmp_path, n_workers=2, replication=1)
    yield cluster
    cluster.close()


def event_batch(lo: int, n: int = 60):
    keys = [f"k{i}" for i in range(lo, lo + n)]
    rng = np.random.default_rng(lo + 1)
    return keys, {
        "h1": (rng.pareto(1.3, n) + 0.05).tolist(),
        "h2": (rng.pareto(1.5, n) + 0.05).tolist(),
    }


def offline_engine(batches) -> QueryEngine:
    summarizer = NS.make_summarizer()
    for keys, weights in batches:
        summarizer.ingest_multi(
            keys, {name: np.asarray(w) for name, w in weights.items()}
        )
    return QueryEngine(summarizer.summary())


def assert_exact(cluster, batches) -> None:
    offline = offline_engine(batches)
    for function in ("max", "l1"):
        served = cluster.client.estimate("web", function, ["h1", "h2"])
        assert served["partial"] is False
        assert served["estimate"] == offline.estimate(
            AggregationSpec(function, ("h1", "h2"))
        ), f"{function} diverged after repair"


class TestPromotion:
    def test_grace_window_blocks_early_promotion(self, healing3):
        healing3.kill("w2")
        healing3.service._heartbeat_round()
        tick = healing3.service.repairs.tick()
        assert tick["promoted"] == []  # dead but inside the grace window
        view = healing3.service.repairs.view()
        assert view["failed_workers"] == []
        healing3.clock.now += healing3.service.config.fail_after_s + 1.0
        tick = healing3.service.repairs.tick()
        assert tick["promoted"] == ["w2"]
        assert healing3.service.repairs.view()["failed_workers"] == ["w2"]

    def test_promotion_survives_coordinator_restart(self, healing3):
        healing3.fail("w2")
        healing3.client.close()
        healing3.coordinator.stop()
        healing3.coordinator = CoordinatorThread(
            healing3.coordinator.config, clock=healing3.clock
        )
        healing3.coordinator.start()
        healing3.client = ServiceClient(
            port=healing3.coordinator.service.port
        )
        view = healing3.service.repairs.view()
        assert view["failed_workers"] == ["w2"]  # persisted, not in-memory

    def test_failed_worker_leave_skips_handoff(self, healing3):
        healing3.fail("w2")
        left = healing3.client.cluster_leave("w2")
        assert left["ok"] and left.get("was_failed")
        view = healing3.client.cluster_status()
        assert "w2" not in [row["worker_id"] for row in view["workers"]]

    def test_rejoin_clears_failed_and_heals(self, healing3):
        batch = event_batch(0)
        healing3.client.ingest("web", *batch, sync=True)
        healing3.fail("w2")
        healing3.settle()
        # the crashed worker returns empty on a fresh port
        shutil.rmtree(healing3.root / "w2")
        thread = healing3.spawn_worker("w2")
        rejoined = healing3.client.cluster_join(
            "w2", "127.0.0.1", thread.service.port
        )
        healing3.killed.discard("w2")
        assert rejoined["ok"]
        view = healing3.settle()
        assert view["failed_workers"] == []
        assert view["fully_replicated"], view
        assert_exact(healing3, [batch])


class TestReReplication:
    def test_killed_primary_re_replicates_and_stays_exact(self, healing3):
        batches = [event_batch(0), event_batch(1000, n=40)]
        for batch in batches:
            healing3.client.ingest("web", *batch, sync=True)
        before = healing3.service.repairs.view()
        assert before["fully_replicated"]
        tick = healing3.fail("w1")
        assert tick["promoted"] == ["w1"]
        view = healing3.settle()
        assert view["fully_replicated"], view
        assert view["degraded_slots"] == []
        # every surviving owner now holds a complete, healthy copy
        for info in view["replication"].values():
            assert len(info["healthy"]) == info["want"] == 2
            assert "w1" not in info["owners"]
        assert_exact(healing3, batches)
        # the journal shows the work, done, with sources named
        ops = [op for op in view["ops"] if op["status"] == "done"]
        assert ops and all(op["source"] for op in ops
                           if op["kind"] == "re_replicate")

    def test_repaired_copy_actually_serves(self, healing3):
        """Kill the repair *source* afterwards: answers must now come
        from the re-replicated copies, proving real bytes moved."""
        batch = event_batch(0)
        healing3.client.ingest("web", *batch, sync=True)
        healing3.fail("w1")
        view = healing3.settle()
        assert view["fully_replicated"]
        healing3.fail("w2")
        view = healing3.settle()
        # only w3 remains: replication target degrades to 1 copy
        assert view["failed_workers"] == ["w1", "w2"]
        assert view["degraded_slots"] == []
        assert_exact(healing3, [batch])

    def test_ingest_after_repair_routes_only_to_members(self, healing3):
        first = event_batch(0)
        healing3.client.ingest("web", *first, sync=True)
        healing3.fail("w2")
        healing3.settle()
        second = event_batch(1000, n=30)
        result = healing3.client.ingest("web", *second, sync=True)
        assert result["ok"] and not result.get("missed_replicas")
        assert_exact(healing3, [first, second])

    def test_unreplicated_kill_degrades_loudly(self, fragile2):
        batch = event_batch(0)
        fragile2.client.ingest("web", *batch, sync=True)
        tick = fragile2.fail("w2")
        assert tick["promoted"] == ["w2"]
        view = fragile2.settle()
        assert not view["fully_replicated"]
        assert view["degraded_slots"]  # data died with its only copy
        failed_ops = [
            op for op in view["ops"] if op["status"] == "failed"
        ]
        assert failed_ops
        assert any("degraded" in (op["detail"] or "") for op in failed_ops)
        served = fragile2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is True
        assert sorted(served["missing_slots"]) == view["degraded_slots"]


class TestAntiEntropy:
    def test_stale_rejoined_copy_is_repaired(self, healing3):
        """A worker that crashes, misses a batch, and rejoins empty gets
        its slots rebuilt by anti-entropy — then serves them exactly."""
        first = event_batch(0)
        healing3.client.ingest("web", *first, sync=True)
        healing3.kill("w2")
        second = event_batch(1000, n=30)
        healing3.client.ingest("web", *second, sync=True)  # w2 misses this
        shutil.rmtree(healing3.root / "w2")
        thread = healing3.spawn_worker("w2")
        rejoined = healing3.client.cluster_join(
            "w2", "127.0.0.1", thread.service.port
        )
        assert rejoined["rejoined"] and rejoined["stale_slots"]
        view = healing3.settle()
        assert view["fully_replicated"], view
        assert view["stale"] == {}
        anti = [op for op in view["ops"] if op["kind"] == "anti_entropy"]
        assert anti and all(op["status"] == "done" for op in anti)
        # burn the other holders: w2's repaired copies must serve exactly
        healing3.fail("w1")
        healing3.fail("w3")
        view = healing3.settle()
        assert view["degraded_slots"] == []
        assert_exact(healing3, [first, second])

    def test_anti_entropy_can_be_disabled(self, tmp_path):
        cluster = Cluster(
            tmp_path, n_workers=3, replication=2, anti_entropy=False
        )
        try:
            first = event_batch(0)
            cluster.client.ingest("web", *first, sync=True)
            cluster.kill("w2")
            cluster.client.ingest("web", *event_batch(1000, n=30), sync=True)
            shutil.rmtree(cluster.root / "w2")
            thread = cluster.spawn_worker("w2")
            cluster.client.cluster_join(
                "w2", "127.0.0.1", thread.service.port
            )
            view = cluster.settle()
            assert view["stale"].get("w2")  # left stale: planning is off
            assert not view["fully_replicated"]
        finally:
            cluster.close()


class TestJournal:
    def test_active_ops_requeue_on_restart(self, healing3):
        runtime = healing3.service.runtime
        op_id = runtime.repair_enqueue(
            "re_replicate", 0, target="w2", reason="test",
            now=healing3.clock(),
        )
        claimed = runtime.repair_claim(op_id, now=healing3.clock())
        assert claimed and claimed["status"] == "active"
        healing3.client.close()
        healing3.coordinator.stop()
        healing3.coordinator = CoordinatorThread(
            healing3.coordinator.config, clock=healing3.clock
        )
        healing3.coordinator.start()
        healing3.client = ServiceClient(
            port=healing3.coordinator.service.port
        )
        rows = healing3.service.runtime.repairs(status="queued")
        assert [row["id"] for row in rows] == [op_id]  # resumed, not lost

    def test_dedupe_suppresses_queued_duplicates(self, healing3):
        runtime = healing3.service.runtime
        now = healing3.clock()
        first = runtime.repair_enqueue("anti_entropy", 1, target="w2",
                                       now=now)
        dupe = runtime.repair_enqueue("anti_entropy", 1, target="w2",
                                      now=now)
        assert first is not None and dupe is None
        other = runtime.repair_enqueue("anti_entropy", 2, target="w2",
                                       now=now)
        assert other is not None

    def test_repair_stats_surface_everywhere(self, healing3):
        healing3.client.ingest("web", *event_batch(0), sync=True)
        healing3.fail("w1")
        healing3.settle()
        journal = healing3.service.runtime.repair_stats()
        assert journal["done"] > 0
        # /cluster, /repairs, /status, and the runtime tier all agree
        assert healing3.client.cluster_status()["repairs"] == journal
        assert healing3.client.repairs()["journal"] == journal
        status = healing3.client.status()
        assert status["repairs"] == journal
        counters = status["runtime"]["counters"]
        assert counters.get("repairs_completed", 0) == journal["done"]


class TestConcurrentHeartbeat:
    def test_blackholed_worker_does_not_serialize_the_round(self, tmp_path):
        """Regression for the serial-probe stall: with three workers
        black-holing ``/health``, a concurrent round costs ~one probe
        budget, not three stacked ones — and marks exactly the
        black-holed workers dead."""
        cluster = Cluster(
            tmp_path, n_workers=4, replication=2,
            probe_timeout_s=0.5, worker_retries=0, probe_concurrency=8,
        )
        try:
            for worker_id in ("w1", "w2", "w3"):
                cluster.workers[worker_id].service.install_faults(
                    FaultPlan(0, [FaultRule(
                        "blackhole", verb="/health", delay_s=30.0,
                    )]),
                    scope=worker_id,
                )
            started = time.monotonic()
            cluster.service._heartbeat_round()
            elapsed = time.monotonic() - started
            # serial probing would cost >= 3 * 0.5s before w4's probe
            assert elapsed < 1.4, f"round took {elapsed:.2f}s (serialized?)"
            rows = cluster.service._worker_rows()
            assert not rows["w1"]["alive"]
            assert not rows["w2"]["alive"]
            assert not rows["w3"]["alive"]
            assert rows["w4"]["alive"]
        finally:
            cluster.close()


class TestRouterRefresh:
    def test_from_coordinator_builds_live_membership(self, healing3):
        router = ClusterClient.from_coordinator(
            port=healing3.service.port, sleep=lambda _s: None
        )
        with router:
            assert router.worker_ids == ("w1", "w2", "w3")
            assert router.topology.replication == 2
            assert router.topology.n_slots == N_SLOTS

    def test_refresh_drops_failed_workers(self, healing3):
        router = ClusterClient.from_coordinator(
            port=healing3.service.port, sleep=lambda _s: None
        )
        with router:
            healing3.fail("w2")
            result = router.refresh()
            assert result["removed"] == ["w2"]
            assert router.worker_ids == ("w1", "w3")

    def test_ingest_reroutes_only_unsent_deliveries(self, healing3):
        """A kill mid-stream: the router re-fetches the topology and
        re-delivers only to owners that provably never got the batch —
        the final answers stay bit-exact (no double-count)."""
        router = ClusterClient.from_coordinator(
            port=healing3.service.port, sleep=lambda _s: None
        )
        with router:
            first = event_batch(0)
            result = router.ingest("web", *first, sync=True)
            assert result["deliveries"] == 2 * result["slots"]
            healing3.fail("w2")
            second = event_batch(1000, n=30)
            result = router.ingest("web", *second, sync=True)
            assert result["ok"]
            assert router.rerouted >= 1
            assert "w2" not in router.worker_ids
            healing3.settle()
            assert_exact(healing3, [first, second])

    def test_refresh_budget_bounds_retries(self, healing3):
        router = ClusterClient.from_coordinator(
            port=healing3.service.port, sleep=lambda _s: None,
            max_refreshes=1,
        )
        with router:
            # kill a worker but do NOT promote it: every refresh still
            # lists it, so the budget runs out and the error is loud
            healing3.kill("w1")
            healing3.kill("w2")
            healing3.kill("w3")
            with pytest.raises(ClusterError, match="refus|reachable"):
                router.ingest("web", *event_batch(0, n=10), sync=True)

    def test_refresh_without_coordinator_raises(self):
        with pytest.raises(ClusterError, match="coordinator"):
            ClusterClient({}).refresh()


class TestAcceptance:
    def test_autonomous_detection_and_re_replication(self, tmp_path):
        """ISSUE 9 acceptance: replication=2, SIGKILL a primary, and the
        background loops alone — real clock, no test-side driving — must
        detect, promote, and restore full replication within a bounded
        window, with answers bit-exact throughout."""
        clock = Clock()  # workers may share a frozen ingest clock ...
        workers: dict[str, ServiceThread] = {}
        config = CoordinatorConfig(
            root=str(tmp_path / "coordinator"),
            namespaces=(NS,),
            port=0,
            n_slots=N_SLOTS,
            replication=2,
            salt=SALT,
            heartbeat_s=0.2,  # ... but the coordinator runs in real time
            probe_timeout_s=0.5,
            worker_retries=0,
            fail_after_s=0.6,
            repair_interval_s=0.2,
        )
        coordinator = CoordinatorThread(config)
        coordinator.start()
        client = ServiceClient(port=coordinator.service.port)
        try:
            for i in (1, 2, 3):
                worker_id = f"w{i}"
                thread = ServiceThread(ServiceConfig(
                    store_root=str(tmp_path / worker_id),
                    namespaces=slot_namespace_configs(NS, N_SLOTS),
                    port=0,
                    compact_to=None,
                    tick_s=3600.0,
                ), clock=clock)
                thread.start()
                workers[worker_id] = thread
                with ServiceClient(port=thread.service.port) as probe:
                    probe.wait_ready()
                client.cluster_join(
                    worker_id, "127.0.0.1", thread.service.port
                )
            batch = event_batch(0)
            client.ingest("web", *batch, sync=True)
            workers["w1"].kill()
            deadline = time.monotonic() + 20.0
            view = None
            while time.monotonic() < deadline:
                view = client.repairs()
                if view["fully_replicated"] and "w1" in view[
                    "failed_workers"
                ]:
                    break
                time.sleep(0.1)
            assert view is not None and view["fully_replicated"], view
            assert view["failed_workers"] == ["w1"]
            offline = offline_engine([batch])
            served = client.estimate("web", "max", ["h1", "h2"])
            assert served["partial"] is False
            assert served["estimate"] == offline.estimate(
                AggregationSpec("max", ("h1", "h2"))
            )
        finally:
            client.close()
            coordinator.stop()
            for worker_id, thread in workers.items():
                if worker_id != "w1":
                    thread.stop()
