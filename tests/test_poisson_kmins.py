"""Tests for Poisson-τ sketches, τ calibration, and k-mins sketches."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks, IppsRanks
from repro.sampling.kmins import KMinsSketch, kmins_sketches
from repro.sampling.poisson import (
    calibrate_tau,
    poisson_from_ranks,
    poisson_sketch_matrix,
)

from tests.conftest import FIG1_RANKS, FIG1_WEIGHTS


class TestPoissonFromRanks:
    def test_membership_is_rank_below_tau(self):
        ranks = np.array([0.05, 0.2, 0.15, math.inf])
        sketch = poisson_from_ranks(ranks, np.ones(4), tau=0.16)
        assert sketch.keys.tolist() == [0, 2]
        assert 0 in sketch and 1 not in sketch

    def test_rejects_nonpositive_tau(self):
        with pytest.raises(ValueError, match="tau must be positive"):
            poisson_from_ranks(np.array([0.1]), np.array([1.0]), tau=0.0)

    def test_figure1_poisson_sample(self):
        """Paper Figure 1: with τ = k/82 the sample is {i1} for k = 1, 2, 3."""
        for k in (1, 2, 3):
            sketch = poisson_from_ranks(FIG1_RANKS, FIG1_WEIGHTS, tau=k / 82.0)
            assert sketch.keys.tolist() == [0]

    def test_matrix_builder(self):
        rng = np.random.default_rng(0)
        ranks = rng.random((30, 2))
        weights = np.ones((30, 2))
        sketches = poisson_sketch_matrix(ranks, weights, np.array([0.1, 0.5]))
        assert len(sketches[0]) == int((ranks[:, 0] < 0.1).sum())
        assert len(sketches[1]) == int((ranks[:, 1] < 0.5).sum())

    def test_matrix_builder_validates_taus(self):
        with pytest.raises(ValueError, match="one tau per assignment"):
            poisson_sketch_matrix(
                np.ones((3, 2)), np.ones((3, 2)), np.array([0.1])
            )


class TestCalibrateTau:
    def test_figure1_value(self):
        """Paper Figure 1: expected size 1 on the example gives τ = 1/82."""
        tau = calibrate_tau(FIG1_WEIGHTS, IppsRanks(), 1.0)
        assert tau == pytest.approx(1.0 / 82.0, rel=1e-6)

    def test_figure1_sizes_two_and_three(self):
        for k in (2, 3):
            tau = calibrate_tau(FIG1_WEIGHTS, IppsRanks(), float(k))
            assert tau == pytest.approx(k / 82.0, rel=1e-6)

    @pytest.mark.parametrize("family", [IppsRanks(), ExponentialRanks()])
    @given(k=st.floats(0.5, 9.5), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_expected_size_achieved(self, family, k, seed):
        rng = np.random.default_rng(seed)
        weights = rng.pareto(1.5, 10) + 0.1
        tau = calibrate_tau(weights, family, k)
        achieved = float(family.cdf_array(weights, tau).sum())
        assert achieved == pytest.approx(k, rel=1e-5, abs=1e-5)

    def test_saturation_returns_inf(self):
        assert calibrate_tau(np.array([1.0, 2.0]), IppsRanks(), 2.0) == math.inf
        assert calibrate_tau(np.array([1.0, 2.0]), IppsRanks(), 5.0) == math.inf

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError, match="must be positive"):
            calibrate_tau(np.array([1.0]), IppsRanks(), 0.0)

    def test_empirical_sample_size_matches(self):
        rng = np.random.default_rng(5)
        weights = rng.pareto(1.2, 200) + 0.05
        family = IppsRanks()
        tau = calibrate_tau(weights, family, 20.0)
        sizes = []
        for _ in range(500):
            seeds = rng.random(200).clip(1e-12, 1 - 1e-12)
            ranks = family.ranks_array(weights, seeds)
            sizes.append(int((ranks < tau).sum()))
        assert np.mean(sizes) == pytest.approx(20.0, rel=0.05)


class TestKMins:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        weights = rng.random((15, 2)) + 0.1
        sketches = kmins_sketches(
            weights, ExponentialRanks(), get_rank_method("shared_seed"), 6, rng
        )
        assert len(sketches) == 2
        for sketch in sketches:
            assert len(sketch) == 6
            assert sketch.min_keys.shape == (6,)
            assert np.all(sketch.min_keys >= 0)

    def test_empty_assignment_gets_sentinel(self):
        rng = np.random.default_rng(1)
        weights = np.array([[1.0, 0.0], [2.0, 0.0]])
        sketches = kmins_sketches(
            weights, ExponentialRanks(), get_rank_method("independent"), 4, rng
        )
        assert np.all(sketches[1].min_keys == -1)
        assert np.all(np.isinf(sketches[1].min_ranks))
        assert sketches[1].distinct_keys() == set()

    def test_min_key_distribution_proportional_to_weight(self):
        """EXP k-mins: P[argmin = i] = w_i / w(I) (sampling w/ replacement)."""
        rng = np.random.default_rng(2)
        weights = np.array([[1.0], [2.0], [7.0]])
        sketches = kmins_sketches(
            weights, ExponentialRanks(), get_rank_method("shared_seed"),
            8000, rng,
        )
        counts = np.bincount(sketches[0].min_keys, minlength=3) / 8000
        np.testing.assert_allclose(counts, [0.1, 0.2, 0.7], atol=0.02)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            kmins_sketches(
                np.ones((2, 1)), ExponentialRanks(),
                get_rank_method("shared_seed"), 0, np.random.default_rng(0),
            )

    def test_distinct_keys(self):
        sketch = KMinsSketch(
            3,
            np.array([0, 1, 0]),
            np.array([0.1, 0.2, 0.3]),
            np.array([1.0, 1.0, 1.0]),
        )
        assert sketch.distinct_keys() == {0, 1}
