"""Deterministic fault injection: plan semantics and both injection points.

The contract under test: a :class:`FaultPlan` is a pure function of its
seed and the sequence of ``decide`` calls — no wall clock, no global
RNG — so any failure a chaos run produced replays bit-for-bit.  The
client-side hook fires before the socket (a dropped request provably
never reached a server); the server-side hook fires after a parsed
request (the daemon really received the bytes it then discards).
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.service import (
    FaultPlan,
    FaultRule,
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

NS = NamespaceConfig("web", ("h1",), k=16, n_shards=2, salt=1)


@pytest.fixture
def daemon(tmp_path):
    config = ServiceConfig(
        store_root=str(tmp_path / "store"),
        namespaces=(NS,),
        port=0,
        compact_to=None,
        tick_s=3600.0,
    )
    thread = ServiceThread(config)
    thread.start()
    client = ServiceClient(port=thread.service.port, timeout=5.0)
    client.wait_ready()
    yield thread, client
    client.close()
    thread.stop()


class TestRules:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule("explode")

    def test_probability_and_delay_validated(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("drop", probability=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule("delay", delay_s=-1.0)

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(7, [
            FaultRule("error", verb="/ingest", status=429, start=2, stop=9),
            FaultRule("drop", scope="w1", probability=0.5, limit=3),
            FaultRule("delay", slot=3, delay_s=0.25, method="POST"),
        ])
        back = FaultPlan.from_json(plan.to_json())
        assert back.seed == plan.seed and back.rules == plan.rules
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        assert FaultPlan.from_file(path).rules == plan.rules

    def test_plan_requires_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_json({"rules": []})


class TestDeterminism:
    @staticmethod
    def _drive(plan: FaultPlan) -> list:
        for i in range(40):
            plan.decide("w1" if i % 3 else "w2", "POST", "/ingest")
            plan.decide("client", "GET", "/query?namespace=web--s002")
        return plan.events

    def test_same_seed_same_events(self):
        rules = [
            FaultRule("drop", probability=0.4),
            FaultRule("error", verb="/query", probability=0.7),
        ]
        first = self._drive(FaultPlan(42, rules))
        second = self._drive(FaultPlan(42, rules))
        assert first == second and first  # identical and non-empty

    def test_different_seed_different_draws(self):
        rules = [FaultRule("drop", probability=0.5)]
        a = self._drive(FaultPlan(1, rules))
        b = self._drive(FaultPlan(2, rules))
        assert [e["seq"] for e in a] != [e["seq"] for e in b]

    def test_match_window_and_limit(self):
        plan = FaultPlan(0, [
            FaultRule("error", start=2, stop=4),  # matches #2 and #3 only
        ])
        outcomes = [
            plan.decide("x", "GET", "/health") is not None for _ in range(6)
        ]
        assert outcomes == [False, False, True, True, False, False]
        limited = FaultPlan(0, [FaultRule("drop", limit=2)])
        fired = [
            limited.decide("x", "GET", "/health") is not None
            for _ in range(5)
        ]
        assert fired == [True, True, False, False, False]
        assert limited.fired() == 2

    def test_slot_matching_from_body_and_query_string(self):
        plan = FaultPlan(0, [FaultRule("error", slot=3)])
        # namespace via request body (the client's POST path)
        assert plan.decide(
            "w1", "POST", "/ingest", namespace="web--s003"
        ) is not None
        assert plan.decide(
            "w1", "POST", "/ingest", namespace="web--s002"
        ) is None
        # namespace via the query string (a GET /bundle)
        assert plan.decide(
            "w1", "GET", "/bundle?namespace=web--s003&bucket=b"
        ) is not None
        # non-slot namespace never matches a slot rule
        assert plan.decide("w1", "POST", "/ingest", namespace="web") is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(0, [
            FaultRule("delay", verb="/ingest"),
            FaultRule("error", verb="/ingest"),
        ])
        decision = plan.decide("x", "POST", "/ingest")
        assert decision.action == "delay" and decision.rule_index == 0


class TestClientInjection:
    def test_error_surfaces_as_service_error(self, daemon):
        _thread, client = daemon
        client.install_faults(FaultPlan(0, [
            FaultRule("error", verb="/ingest", status=429, limit=1),
        ]))
        with pytest.raises(ServiceError) as excinfo:
            client.ingest("web", ["a"], {"h1": [1.0]}, sync=True)
        assert excinfo.value.status == 429
        assert excinfo.value.payload.get("fault") is True
        # the rule is spent: the next attempt goes through for real
        result = client.ingest("web", ["a"], {"h1": [1.0]}, sync=True)
        assert result["ok"]

    def test_drop_on_non_idempotent_raises_refused(self, daemon):
        _thread, client = daemon
        plan = FaultPlan(0, [FaultRule("drop", verb="/ingest", limit=1)])
        client.install_faults(plan)
        with pytest.raises(ConnectionRefusedError):
            client.ingest("web", ["a"], {"h1": [1.0]}, sync=True)
        # provably nothing was sent: the daemon holds zero events
        client.install_faults(None)
        assert client.status()["stats"]["ingested_events"] == 0

    def test_drop_on_idempotent_is_retried_through(self, daemon):
        _thread, client = daemon
        naps = []
        client._sleep = naps.append
        client.install_faults(FaultPlan(0, [
            FaultRule("drop", verb="/health", limit=1),
        ]))
        assert client.liveness()["ok"]  # retry after the dropped attempt
        assert naps  # backoff actually applied

    def test_blackhole_burns_timeout_then_raises(self, daemon):
        _thread, client = daemon
        naps = []
        client._sleep = naps.append
        client.install_faults(FaultPlan(0, [
            FaultRule("blackhole", verb="/ingest"),
        ]))
        with pytest.raises(socket.timeout):
            client.ingest("web", ["a"], {"h1": [1.0]}, sync=True)
        assert naps and naps[0] == client.timeout

    def test_delay_then_success(self, daemon):
        _thread, client = daemon
        naps = []
        client._sleep = naps.append
        client.install_faults(FaultPlan(0, [
            FaultRule("delay", verb="/ingest", delay_s=0.2, limit=1),
        ]))
        result = client.ingest("web", ["a"], {"h1": [2.0]}, sync=True)
        assert result["ok"] and naps == [0.2]


class TestServerInjection:
    def test_error_reply_and_counter(self, daemon):
        thread, client = daemon
        thread.service.install_faults(FaultPlan(0, [
            FaultRule("error", verb="/health", status=503, limit=2),
        ]), scope="worker")
        for _ in range(2):
            with pytest.raises(ServiceError) as excinfo:
                client.liveness()
            assert excinfo.value.status == 503
        assert client.liveness()["ok"]  # spent
        counters = client.status()["runtime"]["counters"]
        assert counters.get("faults_injected") == 2

    def test_server_drop_breaks_connection_client_retries(self, daemon):
        thread, client = daemon
        plan = FaultPlan(0, [FaultRule("drop", verb="/health", limit=1)])
        thread.service.install_faults(plan, scope="worker")
        # the daemon read the request and dropped the connection; the
        # idempotent probe retries on a fresh connection and succeeds
        assert client.liveness()["ok"]
        assert plan.fired() == 1

    def test_scope_filter_targets_one_worker(self, daemon):
        thread, client = daemon
        plan = FaultPlan(0, [FaultRule("error", scope="w-other")])
        thread.service.install_faults(plan, scope="w-this")
        assert client.liveness()["ok"]  # rule never matches this scope
        assert plan.fired() == 0
