"""Dispersed s-set/l-set estimators over Poisson summaries.

Section 4: "The treatment of Poisson sketches is similar and simpler" —
the same template estimators apply with the fixed τ^(b) substituted for
r^(b)_k(I∖{i}).  Our summaries encode the conditioning threshold
uniformly, so the dispersed estimators run unchanged; these tests verify
unbiasedness of min/max/L1 on Poisson summaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_poisson_summary
from repro.estimators.dispersed import (
    l1_estimator,
    lset_estimator,
    max_estimator,
    sset_estimator,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks
from repro.sampling.poisson import calibrate_tau

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def poisson_summary(dataset, method, seed, expected_size=5.0):
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(FAMILY, dataset.weights, rng)
    taus = np.array(
        [
            calibrate_tau(dataset.weights[:, b], FAMILY, expected_size)
            for b in range(dataset.n_assignments)
        ]
    )
    return build_poisson_summary(
        dataset.weights, draw, taus, dataset.assignments, FAMILY,
        mode="dispersed", expected_size=int(expected_size),
    )


def mean_total(dataset, estimate, method="shared_seed", runs=3000):
    total = 0.0
    for run in range(runs):
        total += estimate(poisson_summary(dataset, method, run)).total()
    return total / runs


class TestPoissonDispersed:
    def test_max_unbiased(self):
        dataset = make_random_dataset(n_keys=20, seed=91)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("max", names)).sum())
        mean = mean_total(dataset, lambda s: max_estimator(s, names))
        assert mean == pytest.approx(exact, rel=0.12)

    @pytest.mark.parametrize("variant", ["s", "l"])
    def test_min_unbiased(self, variant):
        dataset = make_random_dataset(n_keys=20, seed=92)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("min", names)
        exact = float(key_values(dataset, spec).sum())
        builder = sset_estimator if variant == "s" else lset_estimator
        mean = mean_total(dataset, lambda s: builder(s, spec))
        assert mean == pytest.approx(exact, rel=0.15)

    def test_l1_unbiased_and_nonnegative(self):
        dataset = make_random_dataset(n_keys=20, seed=93)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("l1", names)).sum())
        total = 0.0
        runs = 3000
        for run in range(runs):
            summary = poisson_summary(dataset, "shared_seed", run)
            adjusted = l1_estimator(summary, names, "l")
            assert np.all(adjusted.values >= -1e-9)
            total += adjusted.total()
        assert total / runs == pytest.approx(exact, rel=0.15)

    def test_independent_min_unbiased(self):
        from repro.estimators.dispersed import independent_min_estimator

        dataset = make_random_dataset(n_keys=15, n_assignments=2, seed=94,
                                      churn=0.0)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("min", names)).sum())
        total = 0.0
        runs = 6000
        for run in range(runs):
            summary = poisson_summary(dataset, "independent", run,
                                      expected_size=8.0)
            total += independent_min_estimator(summary, names).total()
        assert total / runs == pytest.approx(exact, rel=0.2)

    def test_thresholds_do_not_depend_on_membership(self):
        """Unlike bottom-k, Poisson thresholds are the same for members and
        non-members: τ is fixed."""
        dataset = make_random_dataset(seed=95)
        summary = poisson_summary(dataset, "shared_seed", 0)
        for b in range(dataset.n_assignments):
            column = summary.thresholds[:, b]
            assert np.all(column == column[0])
