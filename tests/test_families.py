"""Tests for the EXP and IPPS rank families."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranks.families import (
    ExponentialRanks,
    IppsRanks,
    get_rank_family,
)

FAMILIES = [ExponentialRanks(), IppsRanks()]

positive_weights = st.floats(min_value=1e-6, max_value=1e6)
unit_open = st.floats(min_value=1e-9, max_value=1.0 - 1e-9)
thresholds = st.floats(min_value=1e-9, max_value=1e9)


@pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
class TestFamilyContract:
    @given(w=positive_weights, u=unit_open)
    @settings(max_examples=150)
    def test_cdf_inverts_inv_cdf(self, family, w, u):
        x = family.inv_cdf(w, u)
        assert family.cdf(w, x) == pytest.approx(u, rel=1e-9, abs=1e-12)

    @given(w=positive_weights, x=thresholds)
    @settings(max_examples=150)
    def test_cdf_in_unit_interval(self, family, w, x):
        assert 0.0 <= family.cdf(w, x) <= 1.0

    @given(w1=positive_weights, w2=positive_weights, x=thresholds)
    @settings(max_examples=150)
    def test_monotone_in_weight(self, family, w1, w2, x):
        lo, hi = sorted((w1, w2))
        assert family.cdf(hi, x) >= family.cdf(lo, x)

    @given(w=positive_weights, x1=thresholds, x2=thresholds)
    @settings(max_examples=150)
    def test_monotone_in_threshold(self, family, w, x1, x2):
        lo, hi = sorted((x1, x2))
        assert family.cdf(w, hi) >= family.cdf(w, lo)

    @given(w=positive_weights, u1=unit_open, u2=unit_open)
    @settings(max_examples=150)
    def test_inv_cdf_monotone_in_seed(self, family, w, u1, u2):
        lo, hi = sorted((u1, u2))
        assert family.inv_cdf(w, hi) >= family.inv_cdf(w, lo)

    @given(w1=positive_weights, w2=positive_weights, u=unit_open)
    @settings(max_examples=150)
    def test_shared_seed_consistency(self, family, w1, w2, u):
        """Larger weight, same seed => smaller-or-equal rank."""
        lo, hi = sorted((w1, w2))
        assert family.rank(hi, u) <= family.rank(lo, u)

    def test_zero_weight_never_sampled(self, family):
        assert family.rank(0.0, 0.5) == math.inf
        assert family.cdf(0.0, 100.0) == 0.0

    def test_cdf_at_zero_and_inf(self, family):
        assert family.cdf(3.0, 0.0) == 0.0
        assert family.cdf(3.0, math.inf) == 1.0

    @given(u=st.sampled_from([0.0, 1.0, -0.5, 2.0]))
    def test_inv_cdf_rejects_bad_seed(self, family, u):
        with pytest.raises(ValueError):
            family.inv_cdf(1.0, u)

    def test_cdf_array_matches_scalar(self, family):
        weights = np.array([0.0, 0.5, 2.0, 100.0])
        x = 0.3
        expected = [family.cdf(float(w), x) for w in weights]
        np.testing.assert_allclose(family.cdf_array(weights, x), expected)

    def test_cdf_array_at_infinity(self, family):
        weights = np.array([0.0, 1.0, 5.0])
        np.testing.assert_allclose(
            family.cdf_array(weights, math.inf), [0.0, 1.0, 1.0]
        )

    def test_ranks_array_matches_scalar(self, family):
        weights = np.array([0.0, 0.5, 2.0])
        seeds = np.array([0.3, 0.3, 0.9])
        got = family.ranks_array(weights, seeds)
        expected = [family.rank(float(w), float(u)) for w, u in zip(weights, seeds)]
        np.testing.assert_allclose(got, expected)

    def test_cdf_matrix_matches_scalar(self, family):
        weights = np.array([[0.0, 2.0], [1.0, 3.0]])
        x = np.array([[0.5, math.inf], [0.0, 0.1]])
        got = family.cdf_matrix(weights, x)
        for i in range(2):
            for j in range(2):
                assert got[i, j] == pytest.approx(
                    family.cdf(float(weights[i, j]), float(x[i, j]))
                )

    def test_cdf_matrix_no_nan_on_zero_weight_inf_threshold(self, family):
        got = family.cdf_matrix(np.array([[0.0]]), np.array([[math.inf]]))
        assert got[0, 0] == 0.0

    def test_equality_by_type(self, family):
        assert family == type(family)()
        assert hash(family) == hash(type(family)())


class TestExponentialSpecifics:
    def test_cdf_formula(self):
        fam = ExponentialRanks()
        assert fam.cdf(2.0, 0.5) == pytest.approx(1.0 - math.exp(-1.0))

    def test_min_rank_is_exponential_of_total_weight(self):
        """min of Exp(w_i) is Exp(Σ w_i) — checked via the empirical mean."""
        fam = ExponentialRanks()
        rng = np.random.default_rng(0)
        weights = np.array([1.0, 2.0, 3.0])
        mins = []
        for _ in range(4000):
            seeds = rng.random(3)
            mins.append(min(fam.rank(w, u) for w, u in zip(weights, seeds)))
        assert np.mean(mins) == pytest.approx(1.0 / 6.0, rel=0.1)


class TestIppsSpecifics:
    def test_rank_is_seed_over_weight(self):
        fam = IppsRanks()
        assert fam.rank(20.0, 0.22) == pytest.approx(0.011)

    def test_cdf_caps_at_one(self):
        fam = IppsRanks()
        assert fam.cdf(10.0, 1.0) == 1.0

    def test_figure1_rank_values(self):
        """The exact rank column of Figure 1 in the paper."""
        fam = IppsRanks()
        weights = [20.0, 10.0, 12.0, 20.0, 10.0, 10.0]
        seeds = [0.22, 0.75, 0.07, 0.92, 0.55, 0.37]
        expected = [0.011, 0.075, 0.07 / 12, 0.046, 0.055, 0.037]
        got = [fam.rank(w, u) for w, u in zip(weights, seeds)]
        np.testing.assert_allclose(got, expected, rtol=1e-12)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_rank_family("exp").name == "exp"
        assert get_rank_family("IPPS").name == "ipps"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown rank family"):
            get_rank_family("gaussian")
