"""Tests for the k-mins Jaccard estimator (Thm 4.1) and variance helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import jaccard_similarity
from repro.core.dataset import MultiAssignmentDataset
from repro.estimators.jaccard import (
    jaccard_from_kmins,
    jaccard_matrix,
    kmins_match_fraction,
)
from repro.estimators.variance import (
    conditional_variance,
    relative_variance_bound,
    sigma_v_upper_bound,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks
from repro.sampling.kmins import KMinsSketch, kmins_sketches

from tests.conftest import make_random_dataset


def draw_pair(dataset, k, seed):
    family = ExponentialRanks()
    method = get_rank_method("independent_differences")
    rng = np.random.default_rng(seed)
    return kmins_sketches(dataset.weights, family, method, k, rng)


class TestTheorem41:
    def test_match_fraction_estimates_weighted_jaccard(self):
        dataset = make_random_dataset(n_keys=30, n_assignments=2, seed=41)
        exact = jaccard_similarity(dataset, "w1", "w2")
        estimates = [
            jaccard_from_kmins(*draw_pair(dataset, 400, seed))
            for seed in range(30)
        ]
        sem = np.sqrt(exact * (1 - exact) / 400 / 30)
        assert np.mean(estimates) == pytest.approx(exact, abs=5 * sem + 0.01)

    def test_identical_assignments_always_match(self):
        weights = np.tile(np.random.default_rng(0).random(20)[:, None] + 0.1,
                          (1, 2))
        ds = MultiAssignmentDataset(
            [f"k{i}" for i in range(20)], ["a", "b"], weights
        )
        sketches = draw_pair(ds, 100, 3)
        assert kmins_match_fraction(*sketches) == 1.0

    def test_disjoint_assignments_never_match(self):
        weights = np.zeros((20, 2))
        weights[:10, 0] = 1.0
        weights[10:, 1] = 1.0
        ds = MultiAssignmentDataset(
            [f"k{i}" for i in range(20)], ["a", "b"], weights
        )
        sketches = draw_pair(ds, 200, 4)
        assert kmins_match_fraction(*sketches) == 0.0

    def test_shared_seed_overestimates_weighted_jaccard(self):
        """Shared-seed coordination maximizes key sharing, so its match
        fraction is at least the independent-differences one on average —
        Theorem 4.1's unbiasedness is specific to independent-differences."""
        dataset = make_random_dataset(n_keys=30, n_assignments=2, seed=42,
                                      churn=0.0)
        exact = jaccard_similarity(dataset, "w1", "w2")
        family = ExponentialRanks()
        shared = get_rank_method("shared_seed")
        rng = np.random.default_rng(0)
        sketches = kmins_sketches(dataset.weights, family, shared, 2000, rng)
        assert kmins_match_fraction(*sketches) > exact

    def test_size_mismatch_rejected(self):
        a = KMinsSketch(2, np.array([0, 1]), np.ones(2), np.ones(2))
        b = KMinsSketch(3, np.array([0, 1, 2]), np.ones(3), np.ones(3))
        with pytest.raises(ValueError, match="sizes differ"):
            kmins_match_fraction(a, b)

    def test_jaccard_matrix_symmetric_unit_diagonal(self):
        dataset = make_random_dataset(n_keys=20, n_assignments=3, seed=43)
        sketches = draw_pair(dataset, 50, 5)
        matrix = jaccard_matrix(sketches)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)


class TestVarianceHelpers:
    def test_conditional_variance_formula(self):
        assert conditional_variance(2.0, 0.5) == pytest.approx(4.0)
        assert conditional_variance(3.0, 1.0) == 0.0

    def test_zero_f_zero_variance_even_at_p_zero(self):
        assert conditional_variance(0.0, 0.0) == 0.0

    def test_positive_f_zero_p_raises(self):
        with pytest.raises(ValueError, match="existence"):
            conditional_variance(1.0, 0.0)

    def test_vectorized(self):
        out = conditional_variance(
            np.array([2.0, 0.0]), np.array([0.5, 0.0])
        )
        np.testing.assert_allclose(out, [4.0, 0.0])

    def test_sigma_v_upper_bound(self):
        assert sigma_v_upper_bound(10.0, 4) == pytest.approx(50.0)
        with pytest.raises(ValueError, match="k > 2"):
            sigma_v_upper_bound(10.0, 2)

    def test_relative_bound(self):
        assert relative_variance_bound(4.0, 4.0) == pytest.approx(8.0)
        with pytest.raises(ValueError):
            relative_variance_bound(4.0, 2.0)

    def test_bound_holds_empirically_for_rc(self):
        """ΣV of the single-assignment RC estimator <= w(I)²/(k−2)."""
        from repro.evaluation.analytic import make_context, sv_plain_rc
        from repro.ranks.families import IppsRanks

        dataset = make_random_dataset(n_keys=50, seed=44)
        family = IppsRanks()
        method = get_rank_method("shared_seed")
        k = 10
        sigma = 0.0
        runs = 200
        for run in range(runs):
            rng = np.random.default_rng([7, run])
            draw = method.draw(family, dataset.weights, rng)
            ctx = make_context(dataset.weights, draw, k, family)
            sigma += sv_plain_rc(ctx, 0)
        sigma /= runs
        assert sigma <= sigma_v_upper_bound(dataset.total("w1"), k)
