"""Tests for summary construction and its information model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.summary import (
    build_bottomk_summary,
    build_poisson_summary,
    build_summary_from_sketches,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import BottomKStreamSampler
from repro.sampling.poisson import calibrate_tau

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def make_summary(mode="colocated", method="shared_seed", k=5, seed=0,
                 dataset=None):
    dataset = dataset or make_random_dataset(seed=3)
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(FAMILY, dataset.weights, rng)
    summary = build_bottomk_summary(
        dataset.weights, draw, k, dataset.assignments, FAMILY, mode=mode
    )
    return dataset, draw, summary


class TestBottomKSummary:
    def test_union_contains_every_sketch_member(self):
        dataset, draw, summary = make_summary()
        for b in range(dataset.n_assignments):
            column = draw.ranks[:, b]
            finite = np.isfinite(column)
            order = np.argsort(column)[: summary.k]
            for pos in order:
                if finite[pos]:
                    assert pos in summary.positions

    def test_member_matrix_matches_rank_order(self):
        dataset, draw, summary = make_summary()
        for row, pos in enumerate(summary.positions):
            for b in range(dataset.n_assignments):
                column = draw.ranks[:, b]
                in_bottom_k = (
                    math.isfinite(column[pos])
                    and (column < column[pos]).sum() < summary.k
                )
                assert summary.member[row, b] == in_bottom_k

    def test_thresholds_are_rank_k_excluding(self):
        """θ[i, b] must equal the k-th smallest rank of I \\ {i} under b."""
        dataset, draw, summary = make_summary(k=4)
        for row, pos in enumerate(summary.positions):
            for b in range(dataset.n_assignments):
                others = np.delete(draw.ranks[:, b], pos)
                others = others[np.isfinite(others)]
                expected = (
                    np.sort(others)[summary.k - 1]
                    if len(others) >= summary.k
                    else math.inf
                )
                assert summary.thresholds[row, b] == pytest.approx(expected)

    def test_colocated_mode_stores_full_vectors(self):
        dataset, _, summary = make_summary(mode="colocated")
        np.testing.assert_array_equal(
            summary.weights, dataset.weights[summary.positions]
        )

    def test_dispersed_mode_masks_unsampled_weights(self):
        dataset, _, summary = make_summary(mode="dispersed")
        nan_mask = np.isnan(summary.weights)
        np.testing.assert_array_equal(nan_mask, ~summary.member)
        known = summary.weights[summary.member]
        expected = dataset.weights[summary.positions][summary.member]
        np.testing.assert_array_equal(known, expected)

    def test_shared_seed_summary_carries_one_seed_per_key(self):
        _, draw, summary = make_summary(method="shared_seed")
        assert summary.seeds.ndim == 1
        np.testing.assert_array_equal(summary.seeds, draw.seeds[summary.positions])

    def test_independent_summary_carries_seed_matrix(self):
        _, draw, summary = make_summary(method="independent")
        assert summary.seeds.ndim == 2

    def test_independent_differences_has_no_seeds(self):
        from repro.ranks.families import ExponentialRanks

        dataset = make_random_dataset(seed=3)
        rng = np.random.default_rng(0)
        family = ExponentialRanks()
        draw = get_rank_method("independent_differences").draw(
            family, dataset.weights, rng
        )
        summary = build_bottomk_summary(
            dataset.weights, draw, 5, dataset.assignments, family
        )
        assert summary.seeds is None

    def test_sharing_index_bounds(self):
        dataset, _, summary = make_summary(k=3)
        m = dataset.n_assignments
        assert 1.0 / m <= summary.sharing_index() <= 1.0

    def test_coordinated_sharing_never_above_independent_on_average(self):
        dataset = make_random_dataset(n_keys=60, seed=9)
        coord, indep = 0.0, 0.0
        for run in range(30):
            _, _, s_c = make_summary("colocated", "shared_seed", 8, run, dataset)
            _, _, s_i = make_summary("colocated", "independent", 8, run, dataset)
            coord += s_c.sharing_index()
            indep += s_i.sharing_index()
        assert coord < indep

    def test_mode_validation(self):
        dataset = make_random_dataset()
        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        with pytest.raises(ValueError, match="colocated"):
            build_bottomk_summary(
                dataset.weights, draw, 3, dataset.assignments, FAMILY,
                mode="hybrid",
            )

    def test_columns_lookup(self):
        _, _, summary = make_summary()
        assert summary.columns(["w2"]) == [1]
        assert summary.columns(None) == [0, 1, 2]

    def test_repr(self):
        _, _, summary = make_summary()
        assert "bottomk" in repr(summary)


class TestPoissonSummary:
    def test_membership_by_tau(self):
        dataset = make_random_dataset(seed=4)
        rng = np.random.default_rng(1)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        taus = np.array(
            [
                calibrate_tau(dataset.weights[:, b], FAMILY, 5.0)
                for b in range(dataset.n_assignments)
            ]
        )
        summary = build_poisson_summary(
            dataset.weights, draw, taus, dataset.assignments, FAMILY,
            expected_size=5,
        )
        assert summary.kind == "poisson"
        for row, pos in enumerate(summary.positions):
            for b in range(dataset.n_assignments):
                assert summary.member[row, b] == (draw.ranks[pos, b] < taus[b])
        # thresholds are the fixed taus
        np.testing.assert_allclose(
            summary.thresholds, np.broadcast_to(taus, summary.thresholds.shape)
        )

    def test_sharing_index_without_expected_size(self):
        """Regression: Poisson summaries default to k=0; sharing_index used
        to raise ZeroDivisionError for them."""
        dataset = make_random_dataset(seed=4)
        rng = np.random.default_rng(1)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        taus = np.array(
            [
                calibrate_tau(dataset.weights[:, b], FAMILY, 5.0)
                for b in range(dataset.n_assignments)
            ]
        )
        summary = build_poisson_summary(
            dataset.weights, draw, taus, dataset.assignments, FAMILY
        )
        assert summary.k == 0
        index = summary.sharing_index()  # must not raise
        assert math.isfinite(index)
        # falls back to |S| / total realized memberships
        assert index == pytest.approx(
            summary.n_union / summary.member.sum()
        )
        assert 1.0 / dataset.n_assignments - 1e-12 <= index <= 1.0

    def test_sharing_index_empty_summary_is_nan(self):
        weights = np.zeros((4, 2))
        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, weights, rng)
        summary = build_poisson_summary(
            weights, draw, np.array([0.5, 0.5]), ["a", "b"], FAMILY
        )
        assert math.isnan(summary.sharing_index())


class TestSummaryFromSketches:
    def build(self, k=6, seed=0):
        rng = np.random.default_rng(seed)
        keys = [f"key{i}" for i in range(80)]
        w1 = dict(zip(keys, rng.pareto(1.3, 80) + 0.05))
        w2 = dict(zip(keys, rng.pareto(1.3, 80) + 0.05))
        hasher = KeyHasher(31)
        sketches = {}
        for name, weights in [("p1", w1), ("p2", w2)]:
            sampler = BottomKStreamSampler(k, FAMILY, hasher)
            sampler.process_stream(weights.items())
            sketches[name] = sampler.sketch()
        return sketches, (w1, w2)

    def test_assembles_dispersed_summary(self):
        sketches, _ = self.build()
        summary = build_summary_from_sketches(sketches, FAMILY)
        assert summary.mode == "dispersed"
        assert summary.assignments == ["p1", "p2"]
        assert summary.keys is not None
        assert summary.n_union == len(summary.keys)
        assert summary.member.sum() == len(sketches["p1"]) + len(sketches["p2"])

    def test_estimation_works_end_to_end(self):
        """Stream sketches -> summary -> max estimator, no original data."""
        from repro.core.aggregates import AggregationSpec
        from repro.estimators.dispersed import max_estimator

        sketches, (w1, w2) = self.build(k=20)
        summary = build_summary_from_sketches(sketches, FAMILY)
        adjusted = max_estimator(summary, ("p1", "p2"))
        exact = sum(max(w1[key], w2[key]) for key in w1)
        assert adjusted.total() == pytest.approx(exact, rel=0.5)

    def test_rejects_mismatched_k(self):
        sketches, _ = self.build()
        sampler = BottomKStreamSampler(3, FAMILY, KeyHasher(31))
        sampler.process("x", 1.0)
        sketches["p3"] = sampler.sketch()
        with pytest.raises(ValueError, match="sketch sizes differ"):
            build_summary_from_sketches(sketches, FAMILY)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            build_summary_from_sketches({}, FAMILY)

    def test_shared_seeds_recovered(self):
        sketches, _ = self.build()
        summary = build_summary_from_sketches(sketches, FAMILY)
        hasher = KeyHasher(31)
        for row, key in enumerate(summary.keys):
            if not np.isnan(summary.seeds[row]):
                assert summary.seeds[row] == pytest.approx(hasher(key))
