"""Tests for the fixed-distinct-keys summary variant (Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_fixed_size_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.dispersed import max_estimator
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def build(dataset, k, seed, mode="colocated", budget=None):
    rng = np.random.default_rng(seed)
    draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
    return build_fixed_size_summary(
        dataset.weights, draw, k, dataset.assignments, FAMILY, mode=mode,
        budget=budget,
    )


class TestStructure:
    def test_budget_respected_and_ell_at_least_k(self):
        dataset = make_random_dataset(n_keys=120, seed=81)
        for seed in range(10):
            summary = build(dataset, 6, seed)
            assert summary.k >= 6
            assert summary.n_union <= 6 * dataset.n_assignments

    def test_union_at_least_paper_lower_bound(self):
        """Paper: the total number of distinct keys is at least |W|(k−1)+1
        when enough positive keys exist."""
        dataset = make_random_dataset(n_keys=200, seed=82, churn=0.0)
        m = dataset.n_assignments
        for seed in range(5):
            summary = build(dataset, 6, seed)
            assert summary.n_union >= m * (6 - 1) + 1

    def test_ell_grows_with_similarity(self):
        """Identical assignments share everything: ℓ ≈ budget."""
        base = make_random_dataset(n_keys=150, seed=83, churn=0.0)
        identical = type(base)(
            base.keys, base.assignments,
            np.tile(base.weights[:, :1], (1, base.n_assignments)),
        )
        summary = build(identical, 6, 0)
        assert summary.k >= 6 * identical.n_assignments - 2

    def test_custom_budget(self):
        dataset = make_random_dataset(n_keys=120, seed=84)
        summary = build(dataset, 4, 0, budget=30)
        assert summary.n_union <= 30


class TestEstimation:
    def test_colocated_single_unbiased(self):
        dataset = make_random_dataset(n_keys=25, seed=85)
        spec = AggregationSpec("single", ("w1",))
        exact = dataset.total("w1")
        runs = 3000
        total = 0.0
        for run in range(runs):
            summary = build(dataset, 4, run)
            total += colocated_estimator(summary, spec).total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_dispersed_max_unbiased(self):
        dataset = make_random_dataset(n_keys=25, seed=86)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("max", names)).sum())
        runs = 3000
        total = 0.0
        for run in range(runs):
            summary = build(dataset, 4, run, mode="dispersed")
            total += max_estimator(summary, names).total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_variance_not_worse_than_fixed_k(self):
        """The enlarged embedded samples can only help at equal budget."""
        from repro.core.summary import build_bottomk_summary

        dataset = make_random_dataset(n_keys=60, seed=87)
        spec = AggregationSpec("single", ("w1",))
        f = dataset.column("w1")
        fixed_err = 0.0
        adaptive_err = 0.0
        runs = 400
        for run in range(runs):
            rng = np.random.default_rng([run])
            draw = get_rank_method("shared_seed").draw(
                FAMILY, dataset.weights, rng
            )
            plain = build_bottomk_summary(
                dataset.weights, draw, 5, dataset.assignments, FAMILY
            )
            adaptive = build_fixed_size_summary(
                dataset.weights, draw, 5, dataset.assignments, FAMILY
            )
            fixed_err += colocated_estimator(plain, spec).squared_error_sum(f)
            adaptive_err += colocated_estimator(
                adaptive, spec
            ).squared_error_sum(f)
        assert adaptive_err <= fixed_err * 1.05
