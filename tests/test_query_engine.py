"""Behavioral tests for the batch QueryEngine.

Parity of the underlying kernels is proven in test_kernel_parity.py; this
file checks the engine semantics: batch == per-query reference answers,
kernel-run and predicate caching, predicate pushdown (union keys only),
auto estimator routing, stream-built summaries, and the
jaccard_from_summary edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import make_random_dataset
from repro.core.aggregates import AggregationSpec
from repro.core.dataset import MultiAssignmentDataset
from repro.core.predicates import (
    all_keys,
    attribute_equals,
    attribute_predicate,
    key_in,
)
from repro.core.summary import build_bottomk_summary, build_summary_from_sketches
from repro.engine import queries as queries_module
from repro.engine.queries import Query, QueryEngine, jaccard_from_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.dispersed import lset_estimator, sset_estimator
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import get_rank_family
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import BottomKStreamSampler


def make_summary(dataset, k=6, seed=3, method="shared_seed",
                 mode="colocated", family="ipps"):
    family_obj = get_rank_family(family)
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(family_obj, dataset.weights, rng)
    return build_bottomk_summary(
        dataset.weights, draw, k, dataset.assignments, family_obj, mode=mode
    )


@pytest.fixture
def dataset():
    base = make_random_dataset(n_keys=40, n_assignments=3, seed=9)
    groups = [i % 4 for i in range(base.n_keys)]
    return MultiAssignmentDataset(
        base.keys, base.assignments, base.weights,
        attributes={"group": groups},
    )


class TestBatchAnswers:
    def test_batch_matches_reference_loop(self, dataset):
        summary = make_summary(dataset)
        names = tuple(dataset.assignments)
        specs = [
            (AggregationSpec("min", names), "lset", lset_estimator),
            (AggregationSpec("max", names), "sset", sset_estimator),
            (AggregationSpec("single", names[:1]), "colocated",
             colocated_estimator),
        ]
        predicates = [all_keys(), attribute_equals("group", 1),
                      attribute_equals("group", 2)]
        queries = [
            Query(spec, predicate=pred, estimator=estimator)
            for spec, estimator, _ in specs
            for pred in predicates
        ]
        engine = QueryEngine(summary, dataset)
        results = engine.run(queries)
        assert len(results) == len(queries)
        for result, query in zip(results, queries):
            reference_fn = next(
                fn for spec, _, fn in specs if spec is query.spec
            )
            adjusted = reference_fn(summary, query.spec)
            mask = query.effective_predicate.mask(dataset)
            assert result.estimate == pytest.approx(
                adjusted.subpopulation(mask), rel=1e-12, abs=1e-12
            )

    def test_bare_specs_are_auto_routed(self, dataset):
        summary = make_summary(dataset)
        spec = AggregationSpec("max", tuple(dataset.assignments))
        engine = QueryEngine(summary, dataset)
        (result,) = engine.run([spec])
        assert result.estimator == "colocated"
        assert result.n_selected == summary.n_union

    def test_estimate_with_predicate_override(self, dataset):
        summary = make_summary(dataset)
        engine = QueryEngine(summary, dataset)
        spec = AggregationSpec("min", tuple(dataset.assignments))
        pred = attribute_equals("group", 0)
        via_override = engine.estimate(spec, "lset", predicate=pred)
        reference = lset_estimator(summary, spec).subpopulation(
            pred.mask(dataset)
        )
        assert via_override == pytest.approx(reference, rel=1e-12)


class TestCaching:
    def test_kernel_runs_shared_across_predicates(self, dataset, monkeypatch):
        summary = make_summary(dataset)
        calls = {"n": 0}
        real = queries_module.lset_kernel

        def counting(s, spec):
            calls["n"] += 1
            return real(s, spec)

        monkeypatch.setattr(queries_module, "lset_kernel", counting)
        engine = QueryEngine(summary, dataset)
        spec = AggregationSpec("min", tuple(dataset.assignments))
        queries = [
            Query(spec, predicate=attribute_equals("group", g),
                  estimator="lset")
            for g in range(4)
        ] * 3
        engine.run(queries)
        assert calls["n"] == 1

    def test_l1_reuses_cached_max_and_min(self, dataset, monkeypatch):
        summary = make_summary(dataset)
        calls = []
        real_sset = queries_module.sset_kernel
        real_lset = queries_module.lset_kernel
        monkeypatch.setattr(
            queries_module, "sset_kernel",
            lambda s, spec: calls.append(("sset", spec.function))
            or real_sset(s, spec),
        )
        monkeypatch.setattr(
            queries_module, "lset_kernel",
            lambda s, spec: calls.append(("lset", spec.function))
            or real_lset(s, spec),
        )
        engine = QueryEngine(summary, dataset)
        names = tuple(dataset.assignments)
        engine.estimate(AggregationSpec("max", names), "sset")
        engine.estimate(AggregationSpec("min", names), "lset")
        engine.estimate(AggregationSpec("l1", names), "l1-l")
        # l1 recombines the two cached vectors: no additional kernel runs
        assert calls == [("sset", "max"), ("lset", "min")]

    def test_predicate_evaluated_once_on_union_keys_only(self, dataset):
        summary = make_summary(dataset)
        calls = {"n": 0}

        def fn(key, attrs):
            calls["n"] += 1
            return attrs["group"] == 0

        pred = attribute_predicate(fn, "counted")
        engine = QueryEngine(summary, dataset)
        names = tuple(dataset.assignments)
        engine.estimate(AggregationSpec("min", names), "lset", predicate=pred)
        engine.estimate(AggregationSpec("max", names), "sset", predicate=pred)
        # pushdown: evaluated on the union keys only, and only once
        assert calls["n"] == summary.n_union
        assert summary.n_union < dataset.n_keys

    def test_for_summary_memoizes_engine(self, dataset):
        summary = make_summary(dataset)
        engine_a = QueryEngine.for_summary(summary)
        engine_b = QueryEngine.for_summary(summary)
        assert engine_a is engine_b
        with_dataset = QueryEngine.for_summary(summary, dataset)
        assert with_dataset.dataset is dataset
        assert QueryEngine.for_summary(summary) is with_dataset

    def test_for_summary_rebinds_on_different_dataset(self, dataset):
        summary = make_summary(dataset)
        engine = QueryEngine.for_summary(summary, dataset)
        spec = AggregationSpec("min", tuple(dataset.assignments))
        engine.estimate(spec, "lset",
                        predicate=attribute_equals("group", 1))
        kernel_cache_before = dict(engine._dense)
        assert kernel_cache_before
        other = MultiAssignmentDataset(
            dataset.keys, dataset.assignments, dataset.weights,
            attributes={"group": [0] * dataset.n_keys},
        )
        rebound = QueryEngine.for_summary(summary, other)
        # same engine, dataset rebound: kernel cache (dataset-independent)
        # survives, dataset-derived predicate masks do not
        assert rebound is engine
        assert rebound.dataset is other
        assert rebound._dense == kernel_cache_before
        assert not rebound._predicate_masks

    def test_predicate_cache_is_bounded(self, dataset, monkeypatch):
        summary = make_summary(dataset)
        engine = QueryEngine(summary, dataset)
        monkeypatch.setattr(QueryEngine, "MAX_CACHED_PREDICATES", 4)
        spec = AggregationSpec("max", tuple(dataset.assignments))
        for g in range(10):  # ad-hoc per-request predicates
            engine.estimate(spec, "sset",
                            predicate=attribute_equals("group", g % 4))
        assert len(engine._predicate_masks) <= 4
        assert len(engine._predicate_refs) == len(engine._predicate_masks)


class TestRouting:
    def test_colocated_routes_inclusive(self, dataset):
        summary = make_summary(dataset, mode="colocated")
        engine = QueryEngine(summary)
        spec = AggregationSpec("min", tuple(dataset.assignments))
        assert engine.default_estimator(spec) == "colocated"

    def test_dispersed_shared_seed_routes_lset(self, dataset):
        summary = make_summary(dataset, mode="dispersed")
        engine = QueryEngine(summary)
        names = tuple(dataset.assignments)
        assert engine.default_estimator(AggregationSpec("min", names)) == "lset"
        assert engine.default_estimator(AggregationSpec("l1", names)) == "l1-l"

    def test_dispersed_without_seeds_routes_sset(self, dataset):
        summary = make_summary(
            dataset, mode="dispersed", method="independent_differences",
            family="exp",
        )
        engine = QueryEngine(summary)
        names = tuple(dataset.assignments)
        assert engine.default_estimator(AggregationSpec("min", names)) == "sset"
        assert engine.default_estimator(AggregationSpec("l1", names)) == "l1-s"

    def test_unknown_estimator_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown estimator"):
            Query(AggregationSpec("max", ("w1", "w2")), estimator="bogus")

    def test_single_only_estimators_reject_multi(self, dataset):
        summary = make_summary(dataset)
        engine = QueryEngine(summary, dataset)
        with pytest.raises(ValueError, match="single"):
            engine.estimate(
                AggregationSpec("max", tuple(dataset.assignments)), "plain_rc"
            )

    def test_l1_estimators_reject_non_l1_specs(self, dataset):
        summary = make_summary(dataset)
        engine = QueryEngine(summary, dataset)
        with pytest.raises(ValueError, match="'l1'"):
            engine.estimate(
                AggregationSpec("min", tuple(dataset.assignments)), "l1-s"
            )

    def test_l1_specs_reject_sset_lset_like_the_reference(self, dataset):
        summary = make_summary(dataset)
        engine = QueryEngine(summary, dataset)
        spec = AggregationSpec("l1", tuple(dataset.assignments))
        for estimator in ("sset", "lset"):
            with pytest.raises(ValueError, match="not top-ℓ dependent"):
                engine.estimate(spec, estimator)


class TestStreamSummaries:
    def make_stream_summary(self):
        hasher = KeyHasher(5)
        rng = np.random.default_rng(2)
        family = get_rank_family("ipps")
        sketches = {}
        for name in ("a", "b"):
            sampler = BottomKStreamSampler(5, family, hasher)
            for key in range(30):
                sampler.process(f"key{key}", float(rng.pareto(1.3) + 0.1))
            sketches[name] = sampler.sketch()
        return build_summary_from_sketches(sketches, family)

    def test_key_predicates_without_dataset(self):
        summary = self.make_stream_summary()
        engine = QueryEngine(summary)
        wanted = set(summary.keys[: max(1, summary.n_union // 2)])
        spec = AggregationSpec("max", ("a", "b"))
        with_pred = engine.estimate(spec, "sset", predicate=key_in(wanted))
        total = engine.estimate(spec, "sset")
        assert 0.0 <= with_pred <= total

    def test_attribute_predicate_needs_dataset(self, dataset):
        summary = make_summary(dataset)
        summary.keys = None
        engine = QueryEngine(summary)  # no dataset attached
        with pytest.raises(ValueError, match="dataset"):
            engine.estimate(
                AggregationSpec("max", tuple(dataset.assignments)), "sset",
                predicate=attribute_equals("group", 0),
            )

    def test_attribute_predicate_on_stream_summary_needs_dataset(self):
        """Empty attrs must not silently fail every key (estimate 0.0)."""
        summary = self.make_stream_summary()
        engine = QueryEngine(summary)
        spec = AggregationSpec("max", ("a", "b"))
        with pytest.raises(ValueError, match="key attributes"):
            engine.estimate(spec, "sset",
                            predicate=attribute_equals("group", 0))
        with pytest.raises(ValueError, match="key attributes"):
            engine.estimate(
                spec, "sset",
                predicate=attribute_predicate(
                    lambda key, attrs: attrs.get("group") == 0
                ),
            )

    def test_stream_summary_predicates_map_keys_to_dataset_rows(self):
        """positions of stream summaries are synthetic; attribute lookups
        must go through summary.keys, not summary.positions."""
        summary = self.make_stream_summary()
        n = 30
        # dataset rows deliberately ordered differently from summary rows,
        # with the predicate attribute tied to the key identifier
        keys = [f"key{i}" for i in reversed(range(n))]
        dataset = MultiAssignmentDataset(
            keys, ["a", "b"], np.ones((n, 2)),
            attributes={"parity": [int(key[3:]) % 2 for key in keys]},
        )
        engine = QueryEngine(summary, dataset)
        spec = AggregationSpec("max", ("a", "b"))
        even = engine.estimate(spec, "sset",
                               predicate=attribute_equals("parity", 0))
        odd = engine.estimate(spec, "sset",
                              predicate=attribute_equals("parity", 1))
        total = engine.estimate(spec, "sset")
        assert even + odd == pytest.approx(total, rel=1e-12)
        by_key = engine.estimate(
            spec, "sset",
            predicate=key_in({k for k in summary.keys if int(k[3:]) % 2 == 0}),
        )
        assert even == pytest.approx(by_key, rel=1e-12)

    def test_stream_summary_key_missing_from_dataset_rejected(self):
        summary = self.make_stream_summary()
        dataset = MultiAssignmentDataset(
            ["other"], ["a", "b"], np.ones((1, 2)),
            attributes={"group": [0]},
        )
        engine = QueryEngine(summary, dataset)
        with pytest.raises(ValueError, match="not in the attached dataset"):
            engine.estimate(
                AggregationSpec("max", ("a", "b")), "sset",
                predicate=attribute_equals("group", 0),
            )


class TestJaccardFromSummary:
    def make_pair_summary(self, weights, k=4, seed=0):
        names = ["a", "b"]
        family = get_rank_family("ipps")
        rng = np.random.default_rng(seed)
        draw = get_rank_method("shared_seed").draw(family, weights, rng)
        return build_bottomk_summary(weights, draw, k, names, family,
                                     mode="dispersed")

    def test_duplicate_assignment_names_rejected(self):
        weights = np.abs(np.random.default_rng(1).normal(5, 2, (10, 2)))
        summary = self.make_pair_summary(weights)
        with pytest.raises(ValueError, match="duplicate"):
            jaccard_from_summary(summary, ("a", "a"))

    def test_fewer_than_two_assignments_rejected(self):
        weights = np.abs(np.random.default_rng(1).normal(5, 2, (10, 2)))
        summary = self.make_pair_summary(weights)
        with pytest.raises(ValueError, match="two"):
            jaccard_from_summary(summary, ("a",))

    def test_empty_summary_returns_zero(self):
        summary = self.make_pair_summary(np.zeros((6, 2)))
        assert summary.n_union == 0
        assert jaccard_from_summary(summary, ("a", "b")) == 0.0

    def test_zero_weight_assignment_returns_zero_min(self):
        weights = np.zeros((8, 2))
        weights[:, 0] = np.arange(8, dtype=float) + 1.0
        summary = self.make_pair_summary(weights)
        # disjoint supports: min-norm is 0, so the ratio estimate is 0
        assert jaccard_from_summary(summary, ("a", "b")) == 0.0

    def test_identical_assignments_estimate_one(self):
        column = np.abs(np.random.default_rng(4).normal(5, 2, 12))
        weights = np.stack([column, column], axis=1)
        summary = self.make_pair_summary(weights, k=12)
        assert jaccard_from_summary(summary, ("a", "b")) == pytest.approx(1.0)

    def test_invalid_variant_rejected(self):
        weights = np.abs(np.random.default_rng(1).normal(5, 2, (10, 2)))
        summary = self.make_pair_summary(weights)
        with pytest.raises(ValueError, match="variant"):
            jaccard_from_summary(summary, ("a", "b"), variant="x")


class TestTableTotalsIntegration:
    def test_estimated_norm_columns(self, dataset):
        from repro.evaluation.experiments import table_totals

        summary = make_summary(dataset, k=20)
        names = tuple(dataset.assignments)
        result = table_totals(dataset, [names], summary=summary)
        title, headers, rows = result.tables[1]
        assert headers[-3:] == ["est Σ min", "est Σ max", "est Σ L1"]
        (row,) = rows
        exact_min, est_min = row[1], row[4]
        assert est_min == pytest.approx(exact_min, rel=0.5)


class TestServeManyEdgeCases:
    """serve_many failure and degenerate paths (store-backed batches)."""

    def fill_store(self, root):
        from repro.engine.sharded import ShardedSummarizer
        from repro.store import SummaryStore

        store = SummaryStore(root)
        for namespace, lo in [("web", 0), ("api", 1000)]:
            engine = ShardedSummarizer(
                k=8, assignments=["h1", "h2"], n_shards=2,
                hasher=KeyHasher(3),
            )
            keys = np.arange(lo, lo + 50)
            weights = np.linspace(1.0, 5.0, 50)
            engine.ingest_multi(keys, {"h1": weights, "h2": weights * 2})
            store.write(namespace, "20260728T1201", engine.sketch_bundle())
        return store

    def test_unknown_namespace_raises_keyerror(self, tmp_path):
        store = self.fill_store(tmp_path / "store")
        spec = AggregationSpec("max", ("h1", "h2"))
        with pytest.raises(KeyError, match="no sketch bundles.*ghost"):
            QueryEngine.serve_many(store, {"ghost": [spec]})

    def test_empty_summary_namespace_estimates_zero(self, tmp_path):
        # A namespace whose only artifact holds empty sketches (a sampler
        # that saw no events) is servable: every estimate is exactly 0.
        from repro.store import SketchBundle, SummaryStore

        store = SummaryStore(tmp_path / "store")
        sketches = {
            name: BottomKStreamSampler(
                4, get_rank_family("ipps"), KeyHasher(3)
            ).sketch()
            for name in ("h1", "h2")
        }
        store.write(
            "hollow", "20260728T1201",
            SketchBundle("bottomk", sketches, get_rank_family("ipps"),
                         hasher_salt=3),
        )
        answers = QueryEngine.serve_many(
            store,
            {"hollow": [AggregationSpec("max", ("h1", "h2")),
                        AggregationSpec("single", ("h1",))]},
        )
        assert [result.estimate for result in answers["hollow"]] == [0.0, 0.0]
        assert [result.n_selected for result in answers["hollow"]] == [0, 0]

    def test_failure_mid_batch_propagates_and_pool_survives(self, tmp_path):
        # One namespace of the batch fails (unknown) while others are in
        # flight: the error must propagate — not a partial dict — and a
        # caller-owned executor must stay usable for the next call.
        from repro.engine.parallel import ThreadExecutor

        store = self.fill_store(tmp_path / "store")
        spec = AggregationSpec("max", ("h1", "h2"))
        requests = {"web": [spec], "ghost": [spec], "api": [spec]}
        with ThreadExecutor(workers=2) as executor:
            with pytest.raises(KeyError, match="ghost"):
                QueryEngine.serve_many(store, requests, executor=executor)
            retry = QueryEngine.serve_many(
                store, {"web": [spec], "api": [spec]}, executor=executor
            )
            assert set(retry) == {"web", "api"}
            expected = {
                namespace: QueryEngine.from_store(
                    store, namespace
                ).estimate(spec)
                for namespace in ("web", "api")
            }
            assert {
                namespace: results[0].estimate
                for namespace, results in retry.items()
            } == expected

    def test_corrupt_artifact_mid_batch_propagates(self, tmp_path):
        # Executor failure caused by the worker itself (decode error), not
        # by request validation: still an exception, never a silent skip.
        from repro.store import CodecError

        store = self.fill_store(tmp_path / "store")
        entry = store.entries("api")[0]
        blob_path = tmp_path / "store" / entry.path
        blob_path.write_bytes(b"garbage" + blob_path.read_bytes()[7:])
        spec = AggregationSpec("max", ("h1", "h2"))
        with pytest.raises(CodecError):
            QueryEngine.serve_many(
                store, {"web": [spec], "api": [spec]}
            )
