"""Empirical check of Conjecture 8.1: adjusted weights have zero covariances.

The paper conjectures that all its RC estimators satisfy
``E[a(i)a(j)] = f(i)f(j)`` for i ≠ j, which makes ΣV the variance of any
subpopulation estimate.  We estimate the covariance matrix over many draws
on a small dataset and check all off-diagonal entries vanish within
standard error, for the main estimator families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.core.summary import build_bottomk_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.dispersed import lset_estimator, max_estimator
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()
RUNS = 4000


def adjusted_matrix(dataset, estimate, method, mode, k=4, seed=0):
    """(runs, n_keys) matrix of dense adjusted weights."""
    n = dataset.n_keys
    out = np.zeros((RUNS, n))
    meth = get_rank_method(method)
    for run in range(RUNS):
        rng = np.random.default_rng([seed, run])
        draw = meth.draw(FAMILY, dataset.weights, rng)
        summary = build_bottomk_summary(
            dataset.weights, draw, k, dataset.assignments, FAMILY, mode=mode
        )
        out[run] = estimate(summary).dense(n)
    return out


def max_standardized_covariance(samples: np.ndarray, f_values: np.ndarray):
    """Largest |covariance| / SE over off-diagonal key pairs."""
    runs, n = samples.shape
    centered = samples - f_values[None, :]
    worst = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            if f_values[i] == 0.0 or f_values[j] == 0.0:
                continue
            products = centered[:, i] * centered[:, j]
            mean = products.mean()
            se = products.std() / np.sqrt(runs)
            if se == 0.0:
                continue
            worst = max(worst, abs(mean) / se)
    return worst


class TestConjecture81:
    @pytest.mark.parametrize("method", ["shared_seed", "independent"])
    def test_colocated_inclusive_covariances_vanish(self, method):
        dataset = make_random_dataset(n_keys=8, seed=71)
        spec = AggregationSpec("single", ("w1",))
        samples = adjusted_matrix(
            dataset, lambda s: colocated_estimator(s, spec), method,
            "colocated",
        )
        worst = max_standardized_covariance(samples, dataset.column("w1"))
        # ~28 pairs tested; 4.5 SE keeps false-positive probability tiny.
        assert worst < 4.5

    def test_dispersed_max_covariances_vanish(self):
        dataset = make_random_dataset(n_keys=8, seed=72)
        names = tuple(dataset.assignments)
        samples = adjusted_matrix(
            dataset, lambda s: max_estimator(s, names), "shared_seed",
            "dispersed",
        )
        worst = max_standardized_covariance(
            samples, dataset.weights.max(axis=1)
        )
        assert worst < 4.5

    def test_dispersed_min_covariances_vanish(self):
        dataset = make_random_dataset(n_keys=8, seed=73, churn=0.0)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("min", names)
        samples = adjusted_matrix(
            dataset, lambda s: lset_estimator(s, spec), "shared_seed",
            "dispersed",
        )
        worst = max_standardized_covariance(
            samples, dataset.weights.min(axis=1)
        )
        assert worst < 4.5

    def test_subpopulation_variance_equals_sum_of_per_key(self):
        """With zero covariances, VAR[a(J)] = Σ_{i∈J} VAR[a(i)]."""
        dataset = make_random_dataset(n_keys=8, seed=74)
        spec = AggregationSpec("single", ("w1",))
        samples = adjusted_matrix(
            dataset, lambda s: colocated_estimator(s, spec), "shared_seed",
            "colocated",
        )
        f = dataset.column("w1")
        subset = np.array([0, 2, 5])
        sub_estimates = samples[:, subset].sum(axis=1)
        var_subset = ((sub_estimates - f[subset].sum()) ** 2).mean()
        per_key = ((samples[:, subset] - f[subset]) ** 2).mean(axis=0).sum()
        assert var_subset == pytest.approx(per_key, rel=0.25)
