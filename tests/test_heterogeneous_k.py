"""Tests for bottom-k^(b) summaries (different sizes per assignment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_bottomk_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.dispersed import max_estimator
from repro.estimators.rank_conditioning import plain_rc_from_summary
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()
SIZES = [3, 7, 5]


def build(dataset, seed, mode="colocated"):
    rng = np.random.default_rng(seed)
    draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
    return build_bottomk_summary(
        dataset.weights, draw, SIZES, dataset.assignments, FAMILY, mode=mode
    )


class TestStructure:
    def test_per_assignment_sizes(self):
        dataset = make_random_dataset(n_keys=60, seed=61, churn=0.0)
        summary = build(dataset, 0)
        for b, size in enumerate(SIZES):
            assert int(summary.member[:, b].sum()) == size

    def test_size_count_mismatch_rejected(self):
        dataset = make_random_dataset(seed=61)
        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        with pytest.raises(ValueError, match="one k per assignment"):
            build_bottomk_summary(
                dataset.weights, draw, [3, 7], dataset.assignments, FAMILY
            )

    def test_summary_k_reports_maximum(self):
        dataset = make_random_dataset(n_keys=60, seed=61)
        assert build(dataset, 0).k == max(SIZES)


class TestEstimation:
    def test_colocated_single_unbiased(self):
        dataset = make_random_dataset(n_keys=25, seed=62)
        spec = AggregationSpec("single", ("w2",))
        exact = dataset.total("w2")
        runs = 3000
        total = 0.0
        for run in range(runs):
            total += colocated_estimator(build(dataset, run), spec).total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_dispersed_max_unbiased(self):
        dataset = make_random_dataset(n_keys=25, seed=63)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("max", names)).sum())
        runs = 3000
        total = 0.0
        for run in range(runs):
            summary = build(dataset, run, mode="dispersed")
            total += max_estimator(summary, names).total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_plain_rc_per_assignment_unbiased(self):
        dataset = make_random_dataset(n_keys=25, seed=64)
        runs = 3000
        totals = {b: 0.0 for b in dataset.assignments}
        for run in range(runs):
            summary = build(dataset, run)
            for b in dataset.assignments:
                totals[b] += plain_rc_from_summary(summary, b).total()
        for b in dataset.assignments:
            assert totals[b] / runs == pytest.approx(dataset.total(b), rel=0.12)
