"""Tests for rank-assignment methods (independent / shared-seed / indep-diff)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ranks.assignments import (
    IndependentDifferencesRanks,
    IndependentRanks,
    SharedSeedRanks,
    get_rank_method,
)
from repro.ranks.families import ExponentialRanks, IppsRanks
from repro.ranks.hashing import KeyHasher

# Weights are either exactly zero (key absent) or bounded away from the
# subnormal range, where u/w overflows to inf.
weight_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 5)),
    elements=st.one_of(
        st.just(0.0), st.floats(min_value=1e-6, max_value=100.0)
    ),
)

ALL_METHODS = ["independent", "shared_seed", "independent_differences"]


def _family_for(method_name: str):
    if method_name == "independent_differences":
        return ExponentialRanks()
    return IppsRanks()


@pytest.mark.parametrize("method_name", ALL_METHODS)
class TestCommonContract:
    @given(weights=weight_matrices)
    @settings(max_examples=60, deadline=None)
    def test_zero_weight_gives_infinite_rank(self, method_name, weights):
        method = get_rank_method(method_name)
        draw = method.draw(_family_for(method_name), weights,
                           np.random.default_rng(0))
        assert np.all(np.isinf(draw.ranks[weights == 0.0]))
        assert np.all(np.isfinite(draw.ranks[weights > 0.0]))

    def test_shape_and_reproducibility(self, method_name):
        method = get_rank_method(method_name)
        weights = np.abs(np.random.default_rng(1).normal(5, 2, (10, 3)))
        family = _family_for(method_name)
        d1 = method.draw(family, weights, np.random.default_rng(42))
        d2 = method.draw(family, weights, np.random.default_rng(42))
        assert d1.ranks.shape == (10, 3)
        np.testing.assert_array_equal(d1.ranks, d2.ranks)

    def test_rejects_negative_weights(self, method_name):
        method = get_rank_method(method_name)
        with pytest.raises(ValueError, match="non-negative"):
            method.draw(
                _family_for(method_name),
                np.array([[-1.0, 2.0]]),
                np.random.default_rng(0),
            )

    def test_rejects_one_dimensional_weights(self, method_name):
        method = get_rank_method(method_name)
        with pytest.raises(ValueError, match="2-D"):
            method.draw(
                _family_for(method_name), np.array([1.0, 2.0]),
                np.random.default_rng(0),
            )

    def test_marginal_distribution_is_correct(self, method_name):
        """Each r^(b)(i) must be distributed f_{w^(b)(i)} (property (i))."""
        method = get_rank_method(method_name)
        family = _family_for(method_name)
        weights = np.array([[2.0, 5.0]])
        rng = np.random.default_rng(7)
        samples = np.array(
            [method.draw(family, weights, rng).ranks[0] for _ in range(6000)]
        )
        # Transform through the CDF: must be uniform on (0,1) per column.
        for b, w in enumerate([2.0, 5.0]):
            transformed = family.cdf_matrix(
                np.full(len(samples), w), samples[:, b]
            )
            assert abs(transformed.mean() - 0.5) < 0.02
            assert abs(transformed.std() - math.sqrt(1 / 12)) < 0.02


@pytest.mark.parametrize("method_name", ["shared_seed", "independent_differences"])
class TestConsistency:
    @given(weights=weight_matrices)
    @settings(max_examples=60, deadline=None)
    def test_bigger_weight_smaller_rank(self, method_name, weights):
        method = get_rank_method(method_name)
        draw = method.draw(_family_for(method_name), weights,
                           np.random.default_rng(3))
        n, m = weights.shape
        for i in range(n):
            for b1 in range(m):
                for b2 in range(m):
                    if weights[i, b1] >= weights[i, b2] > 0.0:
                        assert draw.ranks[i, b1] <= draw.ranks[i, b2]

    @given(weights=weight_matrices)
    @settings(max_examples=60, deadline=None)
    def test_equal_weights_equal_ranks(self, method_name, weights):
        weights = np.repeat(weights[:, :1], weights.shape[1], axis=1)
        method = get_rank_method(method_name)
        draw = method.draw(_family_for(method_name), weights,
                           np.random.default_rng(3))
        for row in draw.ranks:
            finite = row[np.isfinite(row)]
            if len(finite):
                assert np.all(finite == finite[0])


class TestSharedSeed:
    def test_rank_equals_inv_cdf_of_common_seed(self):
        family = IppsRanks()
        weights = np.array([[4.0, 8.0, 2.0]])
        draw = SharedSeedRanks().draw(family, weights, np.random.default_rng(5))
        u = draw.seeds[0]
        np.testing.assert_allclose(draw.ranks[0], u / weights[0])

    def test_hashed_draw_matches_manual_hash(self):
        family = IppsRanks()
        weights = np.array([[4.0], [8.0]])
        hasher = KeyHasher(11)
        draw = SharedSeedRanks().draw_hashed(family, weights, ["a", "b"], hasher)
        np.testing.assert_allclose(
            draw.ranks[:, 0], [hasher("a") / 4.0, hasher("b") / 8.0]
        )

    def test_hashed_draw_coordinates_across_processes(self):
        """Two 'processes' with one assignment each agree on shared keys."""
        family = IppsRanks()
        hasher = KeyHasher(13)
        keys = ["x", "y", "z"]
        w1 = np.array([[3.0], [5.0], [7.0]])
        w2 = np.array([[3.0], [5.0], [7.0]])
        d1 = SharedSeedRanks().draw_hashed(family, w1, keys, hasher)
        d2 = SharedSeedRanks().draw_hashed(family, w2, keys, hasher)
        np.testing.assert_array_equal(d1.ranks, d2.ranks)

    def test_hashed_keys_length_mismatch(self):
        with pytest.raises(ValueError, match="keys must match"):
            SharedSeedRanks().draw_hashed(
                IppsRanks(), np.ones((3, 1)), ["a", "b"], KeyHasher(0)
            )


class TestIndependent:
    def test_columns_are_decorrelated(self):
        family = ExponentialRanks()
        weights = np.ones((4000, 2)) * 3.0
        draw = IndependentRanks().draw(family, weights, np.random.default_rng(8))
        corr = np.corrcoef(draw.ranks[:, 0], draw.ranks[:, 1])[0, 1]
        assert abs(corr) < 0.05

    def test_shared_seed_columns_are_perfectly_correlated(self):
        family = ExponentialRanks()
        weights = np.ones((4000, 2)) * 3.0
        draw = SharedSeedRanks().draw(family, weights, np.random.default_rng(8))
        corr = np.corrcoef(draw.ranks[:, 0], draw.ranks[:, 1])[0, 1]
        assert corr > 0.999

    def test_hashed_draw_uses_derived_families(self):
        family = IppsRanks()
        weights = np.full((100, 2), 2.0)
        keys = [f"k{i}" for i in range(100)]
        draw = IndependentRanks().draw_hashed(family, weights, keys, KeyHasher(1))
        corr = np.corrcoef(draw.ranks[:, 0], draw.ranks[:, 1])[0, 1]
        assert abs(corr) < 0.25


class TestIndependentDifferences:
    def test_requires_exp_family(self):
        with pytest.raises(ValueError, match="EXP"):
            IndependentDifferencesRanks().draw(
                IppsRanks(), np.ones((2, 2)), np.random.default_rng(0)
            )

    def test_not_available_for_dispersed_hashing(self):
        with pytest.raises(NotImplementedError):
            IndependentDifferencesRanks().draw_hashed(
                ExponentialRanks(), np.ones((2, 2)), ["a", "b"], KeyHasher(0)
            )

    def test_rank_entries_not_fully_coupled(self):
        """Unlike shared-seed, ranks of unequal weights are not a
        deterministic function of each other."""
        family = ExponentialRanks()
        weights = np.tile(np.array([[1.0, 10.0]]), (4000, 1))
        draw = IndependentDifferencesRanks().draw(
            family, weights, np.random.default_rng(9)
        )
        # r^(2) <= r^(1) always (consistency), but correlation of the
        # transformed uniforms must be strictly below 1.
        u1 = family.cdf_matrix(weights[:, 0], draw.ranks[:, 0])
        u2 = family.cdf_matrix(weights[:, 1], draw.ranks[:, 1])
        corr = np.corrcoef(u1, u2)[0, 1]
        assert 0.05 < corr < 0.98


class TestRegistry:
    def test_lookup(self):
        assert get_rank_method("shared_seed").consistent
        assert not get_rank_method("independent").consistent
        assert get_rank_method("independent_differences").consistent

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown rank method"):
            get_rank_method("quantum")
