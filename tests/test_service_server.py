"""End-to-end HTTP tests for the always-on daemon (SummaryService).

A real server on an ephemeral port, a real stdlib client: ingest with
backpressure (429 when the bounded queue is full), bit-exact query
answers over HTTP JSON, forced rotation, status/health introspection,
error mapping, and the graceful shutdown → checkpoint → resume cycle.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service import (
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)


def make_config(root, **overrides):
    base = dict(
        store_root=str(root),
        namespaces=(NS,),
        port=0,
        compact_to=None,
        tick_s=0.05,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def event_batch(lo: int, n: int = 50):
    keys = [f"k{i}" for i in range(lo, lo + n)]
    rng = np.random.default_rng(lo)
    w1 = (rng.pareto(1.3, n) + 0.05).tolist()
    w2 = (rng.pareto(1.5, n) + 0.05).tolist()
    return keys, {"h1": w1, "h2": w2}


def offline_engine(batches) -> QueryEngine:
    summarizer = NS.make_summarizer()
    for keys, weights in batches:
        summarizer.ingest_multi(
            keys, {name: np.asarray(w) for name, w in weights.items()}
        )
    return QueryEngine(summarizer.summary())


@pytest.fixture
def service(tmp_path):
    with ServiceThread(make_config(tmp_path / "store")) as thread:
        client = ServiceClient(port=thread.service.port)
        client.wait_ready()
        yield thread, client
        client.close()


class TestEndpoints:
    def test_health_and_status(self, service):
        _thread, client = service
        health = client.health()
        assert health["ok"] and health["namespaces"] == ["web"]
        status = client.status()
        assert status["ok"]
        assert status["namespaces"]["web"]["bucket"]
        assert status["queue"]["capacity"] == 64
        assert status["store"]["namespaces"] == []  # nothing rotated yet
        assert status["stats"]["requests"] >= 1

    def test_ingest_then_query_is_bit_exact_over_http(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        result = client.ingest("web", keys, weights, sync=True)
        assert result["applied"] and result["events"] == 50

        offline = offline_engine([(keys, weights)])
        for function in ("max", "min", "single"):
            assignments = ["h1"] if function == "single" else ["h1", "h2"]
            served = client.estimate("web", function, assignments)
            assert served["estimate"] == offline.estimate(
                AggregationSpec(function, tuple(assignments))
            )
        jaccard = client.jaccard("web", ["h1", "h2"])
        from repro.engine.queries import jaccard_from_summary

        assert jaccard["estimate"] == jaccard_from_summary(
            offline.summary, ("h1", "h2"), "l"
        )

    def test_query_get_is_curlable(self, service):
        thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        url = (
            f"http://127.0.0.1:{thread.service.port}/query?"
            "namespace=web&function=max&assignments=h1,h2"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.load(response)
        assert payload["ok"]
        assert payload["estimate"] == client.estimate(
            "web", "max", ["h1", "h2"]
        )["estimate"]

    def test_subpopulation_and_cache_flags(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        subset = keys[:10]
        first = client.estimate("web", "max", ["h1", "h2"], keys=subset)
        again = client.estimate("web", "max", ["h1", "h2"], keys=subset)
        assert not first["cached"] and again["cached"]
        offline = offline_engine([(keys, weights)])
        from repro.core.predicates import key_in

        assert first["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2")), predicate=key_in(subset)
        )

    def test_flush_rotation_preserves_answers(self, service):
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        before = client.estimate("web", "max", ["h1", "h2"])
        rotated = client.rotate()
        assert [w["part"] for w in rotated["written"]] == ["live"]
        after = client.estimate("web", "max", ["h1", "h2"])
        assert after["estimate"] == before["estimate"]
        assert not after["cached"]  # version moved with the flush
        # a flush is durability, not a reset: the live view supersedes
        # the window's own flushed artifact
        assert after["sources"]["stored_entries"] == 0
        assert after["sources"]["live_events"] == 100
        status = client.status()
        assert status["store"]["namespaces"][0]["namespace"] == "web"
        assert status["namespaces"]["web"]["buffered_events"] == 100

    def test_flush_then_same_keys_stays_exact_over_http(self, service):
        # Regression for the /rotate mid-bucket hazard: repeated keys
        # after a flush must keep every later query exact, not brick the
        # namespace with an unmergeable duplicate-key artifact pair.
        _thread, client = service
        keys, weights = event_batch(0)
        client.ingest("web", keys, weights, sync=True)
        client.rotate()
        client.ingest("web", keys, weights, sync=True)  # same keys again
        served = client.estimate("web", "max", ["h1", "h2"])
        offline = offline_engine([(keys, weights), (keys, weights)])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_get_query_coerces_numeric_keys(self, service):
        # GET /query carries keys as text; numeric-looking ones must fold
        # to numbers so they match integer-keyed summaries like POST does.
        thread, client = service
        # 10 keys < k=16, so every key is in the sample and the
        # subpopulation estimate is an exact positive sum
        keys = list(range(100, 110))
        weights = {"h1": [float(i + 1) for i in range(10)],
                   "h2": [1.0] * 10}
        client.ingest("web", keys, weights, sync=True)
        posted = client.estimate("web", "max", ["h1", "h2"],
                                 keys=[100, 101, 102])
        url = (
            f"http://127.0.0.1:{thread.service.port}/query?"
            "namespace=web&function=max&assignments=h1,h2&keys=100,101,102"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            got = json.load(response)
        assert got["estimate"] == posted["estimate"]
        assert posted["estimate"] > 0.0

    def test_async_ingest_applies_eventually(self, service):
        _thread, client = service
        keys, weights = event_batch(0, n=10)
        result = client.ingest("web", keys, weights)  # fire and forget
        assert result["queued"] == 10 and not result["applied"]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.status()["stats"]["ingested_events"] >= 10:
                break
            time.sleep(0.02)
        else:
            pytest.fail("async batch was never applied")


class TestErrorMapping:
    def test_unknown_namespace_404(self, service):
        _thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.ingest("ghost", ["a"], {"h1": [1.0]})
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.estimate("ghost", "max", ["h1"])
        assert excinfo.value.status == 404

    def test_no_data_404_and_bad_request_400(self, service):
        _thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.estimate("web", "max", ["h1", "h2"])  # empty service
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.estimate("web", "median", ["h1"])
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/query", {"kind": "estimate"})
        assert excinfo.value.status == 400

    def test_malformed_ingest_bodies_400(self, service):
        _thread, client = service
        for body in (
            {"namespace": "web", "keys": "nope", "weights": {}},
            {"namespace": "web", "keys": ["a"], "weights": {"h1": [1, 2]}},
            {"namespace": "web", "keys": ["a"],
             "weights": {"ghost": [1.0]}},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/ingest", body)
            assert excinfo.value.status in (400, 404)

    def test_sync_ingest_surfaces_apply_errors(self, service):
        _thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.ingest("web", ["a"], {"h1": [-5.0]}, sync=True)
        assert excinfo.value.status == 400
        assert "non-negative" in str(excinfo.value)

    def test_unknown_route_and_method(self, service):
        thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/ingest")
        assert excinfo.value.status == 405

    def test_async_ingest_rejects_unappliable_batches_upfront(self, service):
        # An async batch is acknowledged before it is applied, so anything
        # that cannot apply must be rejected at accept time — never a 200
        # for data that silently fails in the worker.
        _thread, client = service
        for body in (
            {"namespace": "web", "keys": ["a"],
             "weights": {"h1": ["oops"]}},
            {"namespace": "web", "keys": ["a"],
             "weights": {"h1": [float("nan")]}},
            {"namespace": "web", "keys": ["a"],
             "weights": {"h1": [float("inf")]}},
            {"namespace": "web", "keys": ["a"], "weights": {"h1": [-1.0]}},
            {"namespace": "web", "keys": [None], "weights": {"h1": [1.0]}},
            {"namespace": "web", "keys": [["nested"]],
             "weights": {"h1": [1.0]}},
        ):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/ingest", body)
            assert excinfo.value.status == 400
        assert client.status()["stats"]["ingest_errors"] == 0

    def test_malformed_content_length_400(self, service):
        import socket as socket_module

        thread, _client = service
        for bad in ("abc", "-5"):
            with socket_module.create_connection(
                ("127.0.0.1", thread.service.port), timeout=10
            ) as sock:
                sock.sendall(
                    (
                        "POST /ingest HTTP/1.1\r\n"
                        f"Content-Length: {bad}\r\n\r\n"
                    ).encode()
                )
                response = sock.recv(4096).decode()
            assert response.startswith("HTTP/1.1 400")
            assert "Content-Length" in response

    def test_overlong_request_line_400(self, service):
        # Past the StreamReader's 64 KiB buffer limit readline raises
        # ValueError; the handler must answer 400, not die silently.
        import socket as socket_module

        thread, _client = service
        with socket_module.create_connection(
            ("127.0.0.1", thread.service.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /" + b"a" * 100_000)  # no newline in sight
            response = sock.recv(4096).decode()
        assert response.startswith("HTTP/1.1 400")
        assert "request line too long" in response

    def test_overlong_header_line_431(self, service):
        import socket as socket_module

        thread, _client = service
        with socket_module.create_connection(
            ("127.0.0.1", thread.service.port), timeout=10
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nX-Big: " + b"a" * 20_000
                + b"\r\n\r\n"
            )
            response = sock.recv(4096).decode()
        assert response.startswith("HTTP/1.1 431")
        assert "byte limit" in response

    def test_too_many_header_lines_431(self, service):
        import socket as socket_module

        thread, _client = service
        headers = b"".join(
            b"x-%d: a\r\n" % i for i in range(150)
        )
        with socket_module.create_connection(
            ("127.0.0.1", thread.service.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n")
            response = sock.recv(4096).decode()
        assert response.startswith("HTTP/1.1 431")
        assert "header lines" in response

    def test_invalid_json_400(self, service):
        thread, _client = service
        conn_client = ServiceClient(port=thread.service.port)
        conn = conn_client._connection(conn_client.timeout)
        conn.request("POST", "/query", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400 and "invalid JSON" in payload["error"]
        conn_client.close()


class TestBackpressure:
    def test_queue_full_answers_429(self, tmp_path):
        config = make_config(
            tmp_path / "store", ingest_queue_batches=1, tick_s=5.0
        )
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            service = thread.service
            release = threading.Event()
            entered = threading.Event()
            original = service.manager.ingest

            def blocked(*args, **kwargs):
                entered.set()
                release.wait(10.0)
                return original(*args, **kwargs)

            service.manager.ingest = blocked
            try:
                keys, weights = event_batch(0, n=5)
                # batch 1: picked up by the worker, blocks in apply
                client.ingest("web", keys, weights)
                assert entered.wait(5.0)
                # batch 2: sits in the queue (capacity 1)
                deadline = time.monotonic() + 5.0
                while True:
                    try:
                        client.ingest("web", keys, weights)
                        break
                    except ServiceError as err:  # pragma: no cover - timing
                        if err.status != 429 or time.monotonic() > deadline:
                            raise
                # batch 3: queue full -> backpressure
                with pytest.raises(ServiceError) as excinfo:
                    client.ingest("web", keys, weights)
                assert excinfo.value.status == 429
                assert "retry" in str(excinfo.value)
                assert client.status()["stats"]["ingest_rejected"] >= 1
            finally:
                release.set()
                service.manager.ingest = original
            client.close()

    def test_oversized_body_413(self, tmp_path):
        # The Content-Length gate fires before the body is even read.
        config = make_config(tmp_path / "store", max_body_bytes=100)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            with pytest.raises(ServiceError) as excinfo:
                client.ingest("web", [f"k{i}" for i in range(50)],
                              {"h1": [1.0] * 50})
            assert excinfo.value.status == 413
            assert "byte limit" in str(excinfo.value)
            client.close()

    def test_oversized_batch_413(self, tmp_path):
        config = make_config(tmp_path / "store", max_batch_events=3)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            keys, weights = event_batch(0, n=5)
            with pytest.raises(ServiceError) as excinfo:
                client.ingest("web", keys, weights)
            assert excinfo.value.status == 413
            client.close()


class TestShutdownResume:
    def test_ingest_after_shutdown_begins_is_refused(self, service):
        # A batch accepted behind the drain sentinel would be acked but
        # never applied; once stopping, ingest must answer 503.
        thread, client = service
        thread.service._stopping = True
        # once stopping, the server may close idle keep-alive connections
        # at any moment; reconnect like a real client would
        client.close()
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.ingest("web", ["a"], {"h1": [1.0]})
            assert excinfo.value.status == 503
            assert "shutting down" in str(excinfo.value)
        finally:
            thread.service._stopping = False

    def test_clean_shutdown_checkpoints_and_resumes_exactly(self, tmp_path):
        from repro.service.windows import CHECKPOINT_PART
        from repro.store import SummaryStore

        root = tmp_path / "store"
        config = make_config(root)
        batch1, batch2 = event_batch(0), event_batch(1000)

        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            client.ingest("web", *batch1, sync=True)
            client.rotate()
            client.ingest("web", *batch2, sync=True)
            before = client.estimate("web", "max", ["h1", "h2"])["estimate"]
            client.shutdown()  # graceful: drains and checkpoints

        store = SummaryStore(root, create=False)
        checkpoints = store.entries("web", kind="checkpoint")
        assert [entry.part for entry in checkpoints] == [CHECKPOINT_PART]

        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            status = client.status()
            # rotate() is a flush, not a reset: both batches (2 x 50
            # events x 2 assignments) are live again after the resume
            assert status["namespaces"]["web"]["buffered_events"] == 200
            after = client.estimate("web", "max", ["h1", "h2"])["estimate"]
            client.close()
        assert after == before
        offline = offline_engine([batch1, batch2])
        assert after == offline.estimate(AggregationSpec("max", ("h1", "h2")))

    def test_shutdown_completes_with_an_idle_keepalive_client(self, tmp_path):
        # On Python 3.12+ Server.wait_closed() also waits for active
        # client handlers; an idle keep-alive connection must not hang
        # the graceful shutdown (connections are closed before the wait).
        config = make_config(tmp_path / "store")
        thread = ServiceThread(config)
        thread.start()
        client = ServiceClient(port=thread.service.port)
        client.wait_ready()
        idle = ServiceClient(port=thread.service.port)
        idle.health()  # establish a keep-alive connection, leave it open
        try:
            thread.stop(timeout=10.0)  # raises TimeoutError on a hang
        finally:
            idle.close()
            client.close()

    def test_queued_batches_drain_into_the_checkpoint(self, tmp_path):
        root = tmp_path / "store"
        config = make_config(root)
        keys, weights = event_batch(0, n=20)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            client.ingest("web", keys, weights)  # async: may still be queued
            client.close()
        # ServiceThread.stop() drove the graceful path: the batch must be
        # in the checkpoint even though nothing waited for it.
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            served = client.estimate("web", "max", ["h1", "h2"])["estimate"]
            client.close()
        offline = offline_engine([(keys, weights)])
        assert served == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )


class TestBackgroundRotation:
    def test_ticker_compacts_on_cadence(self, tmp_path):
        class Clock:
            def __init__(self) -> None:
                self.now = 1_767_225_540.0

            def __call__(self) -> float:
                return self.now

        clock = Clock()
        config = make_config(
            tmp_path / "store", tick_s=0.05, compact_to="hour",
            compact_every_s=0.1,
        )
        with ServiceThread(config, clock=clock) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            before = None
            for lo in (0, 1000):  # two minute buckets, key-disjoint
                client.ingest("web", *event_batch(lo, n=10), sync=True)
                clock.now += 60.0
                client.rotate()
            before = client.estimate("web", "max", ["h1", "h2"])["estimate"]
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = client.status()
                buckets = status["store"]["namespaces"][0]["buckets"]
                if any(len(bucket) == 11 for bucket in buckets):  # hour id
                    break
                time.sleep(0.05)
            else:
                pytest.fail("ticker never compacted the minute buckets")
            after = client.estimate("web", "max", ["h1", "h2"])
            assert after["estimate"] == before  # compaction is exact
            client.close()

    def test_ticker_rotates_on_bucket_boundary(self, tmp_path):
        # A fake clock parked just before a minute boundary: the ticker
        # must publish the window without any client call.
        class Clock:
            def __init__(self) -> None:
                self.now = 1_767_225_540.0  # 2026-01-01T00:39:00Z

            def __call__(self) -> float:
                return self.now

        clock = Clock()
        config = make_config(tmp_path / "store", tick_s=0.05)
        with ServiceThread(config, clock=clock) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            keys, weights = event_batch(0, n=10)
            client.ingest("web", keys, weights, sync=True)
            clock.now += 60.0  # cross the boundary; ticker does the rest
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = client.status()
                if status["store"]["namespaces"]:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("ticker never rotated the live window")
            assert status["namespaces"]["web"]["buffered_events"] == 0
            served = client.estimate("web", "max", ["h1", "h2"])["estimate"]
            client.close()
        offline = offline_engine([(keys, weights)])
        assert served == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
