"""Scaled bundles survive the wire: codec round trip + from_bundles(scales=).

The decay-aware cluster path composes three primitives —
:meth:`SketchBundle.scaled`, the codec's encode→decode round trip, and
:meth:`QueryEngine.from_bundles` / :meth:`from_encoded_bundles` with
``scales=`` — and exactness of the composition is what lets a
coordinator apply per-bucket decay factors to bundles fetched from
workers.  These tests pin the composition bit for bit:

* ``scaled`` commutes with the codec: scale-then-encode and
  encode-then-scale decode to bit-identical bundles;
* ``from_bundles(bundles, scales=...)`` equals pre-scaling by hand;
* ``from_encoded_bundles(blobs, scales=...)`` — the over-the-wire path —
  answers bit-identically to the in-memory engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.engine.sharded import ShardedSummarizer
from repro.ranks.hashing import KeyHasher
from repro.store.codec import decode, encode

ASSIGNMENTS = ["h1", "h2"]
SALT = 13


def make_bundle(key_range, seed=0, k=8):
    """Small bundle over a dedicated key range (disjoint ranges merge)."""
    rng = np.random.default_rng(seed)
    engine = ShardedSummarizer(
        k=k, assignments=ASSIGNMENTS, n_shards=2, hasher=KeyHasher(SALT)
    )
    keys = np.arange(*key_range)
    for name in ASSIGNMENTS:
        engine.ingest(name, keys, rng.pareto(1.3, len(keys)) + 0.05)
    return engine.sketch_bundle()


SCALES = [0.25, 1.0, 3.5]


@pytest.fixture(scope="module")
def bundles():
    return [
        make_bundle((0, 60), seed=1),
        make_bundle((60, 120), seed=2),
        make_bundle((120, 180), seed=3),
    ]


class TestScaledCodecRoundTrip:
    def test_scale_commutes_with_codec(self, bundles):
        for bundle, factor in zip(bundles, SCALES):
            scaled_then_wire = decode(encode(bundle.scaled(factor)))
            wire_then_scaled = decode(encode(bundle)).scaled(factor)
            assert scaled_then_wire.equals(wire_then_scaled)
            assert scaled_then_wire.equals(bundle.scaled(factor))

    def test_factor_one_is_a_shared_no_op(self, bundles):
        bundle = bundles[0]
        assert bundle.scaled(1.0) is bundle
        assert decode(encode(bundle)).equals(bundle.scaled(1.0))

    def test_scaled_bundles_stay_mergeable(self, bundles):
        # coordination metadata is untouched, so key-disjoint scaled
        # bundles still merge exactly
        scaled = [b.scaled(s) for b, s in zip(bundles, SCALES)]
        merged = scaled[0].merge(*scaled[1:])
        assert sorted(merged.assignments) == sorted(ASSIGNMENTS)


class TestFromBundlesScales:
    def test_scales_equal_prescaling_by_hand(self, bundles):
        via_scales = QueryEngine.from_bundles(bundles, scales=SCALES)
        by_hand = QueryEngine.from_bundles(
            [b.scaled(s) for b, s in zip(bundles, SCALES)]
        )
        for function in ("max", "min", "l1"):
            spec = AggregationSpec(function, tuple(ASSIGNMENTS))
            assert via_scales.estimate(spec) == by_hand.estimate(spec)

    def test_wire_path_is_bit_identical(self, bundles):
        blobs = [encode(b) for b in bundles]
        over_wire = QueryEngine.from_encoded_bundles(blobs, scales=SCALES)
        in_memory = QueryEngine.from_bundles(bundles, scales=SCALES)
        for function in ("max", "min", "l1"):
            spec = AggregationSpec(function, tuple(ASSIGNMENTS))
            assert over_wire.estimate(spec) == in_memory.estimate(spec)
        single = AggregationSpec("single", ("h1",))
        assert over_wire.estimate(single) == in_memory.estimate(single)

    def test_scale_count_mismatch_rejected(self, bundles):
        with pytest.raises(ValueError, match="one scale per bundle"):
            QueryEngine.from_bundles(bundles, scales=[1.0])

    def test_corrupted_blob_fails_loudly(self, bundles):
        blob = bytearray(encode(bundles[0]))
        blob[-1] ^= 0xFF  # flip one payload byte: CRC must catch it
        from repro.store.codec import CodecError

        with pytest.raises(CodecError):
            QueryEngine.from_encoded_bundles([bytes(blob)])
