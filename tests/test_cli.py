"""Tests for the experiment CLI (python -m repro.evaluation)."""

from __future__ import annotations

import pytest

from repro.evaluation.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["F3"])
        assert args.experiment == "F3"
        assert args.workload == "ip"
        assert args.k == [10, 40, 160]

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["F3", "--workload", "webscale"])


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "F3" in out and "THM41" in out

    def test_no_experiment_lists(self, capsys):
        assert main([]) == 0
        assert "F3" in capsys.readouterr().out

    def test_runs_f3_on_small_workload(self, capsys):
        code = main(
            ["F3", "--workload", "netflix", "--k", "5", "10", "--runs", "2",
             "--scale", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ratio ind/coord" in out

    def test_runs_table_experiment(self, capsys):
        assert main(["T2", "--workload", "stocks", "--scale", "0.2"]) == 0
        assert "Σ max" in capsys.readouterr().out

    def test_runs_colocated_experiment(self, capsys):
        code = main(
            ["F9", "--workload", "stocks", "--k", "5", "--runs", "2",
             "--scale", "0.1"]
        )
        assert code == 0
        assert "coord/" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["F99", "--workload", "netflix", "--scale", "0.1"])

    def test_jaccard_experiment(self, capsys):
        code = main(
            ["THM41", "--workload", "stocks", "--k", "50", "--runs", "2",
             "--scale", "0.1"]
        )
        assert code == 0
        assert "Jaccard" in capsys.readouterr().out
