"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ip_traffic import (
    IPTraceConfig,
    generate_ip_trace,
    ip_colocated_dataset,
    ip_dispersed_dataset,
)
from repro.datasets.netflix import NetflixConfig, netflix_monthly_dataset
from repro.datasets.stocks import StocksConfig, stocks_daily_dataset
from repro.datasets.synthetic import correlated_zipf_dataset, zipf_weights

SMALL_TRACE = IPTraceConfig(
    n_periods=3, flows_per_period=1500, n_dest_ips=300, n_src_ips=600
)


class TestZipfWeights:
    def test_shape_and_positivity(self):
        w = zipf_weights(100, rng=np.random.default_rng(0))
        assert w.shape == (100,)
        assert np.all(w > 0)

    def test_unshuffled_is_decreasing(self):
        w = zipf_weights(50, shuffle=False)
        assert np.all(np.diff(w) <= 0)

    def test_skew_parameter(self):
        flat = zipf_weights(100, alpha=0.1, shuffle=False)
        steep = zipf_weights(100, alpha=2.0, shuffle=False)
        assert steep[0] / steep[-1] > flat[0] / flat[-1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestCorrelatedZipf:
    def test_deterministic(self):
        a = correlated_zipf_dataset(50, 3, seed=1)
        b = correlated_zipf_dataset(50, 3, seed=1)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_every_key_alive(self):
        ds = correlated_zipf_dataset(200, 4, churn=0.4, seed=2)
        assert np.all((ds.weights > 0).any(axis=1))

    def test_churn_zero_gives_full_support(self):
        ds = correlated_zipf_dataset(50, 3, churn=0.0, seed=3)
        assert np.all(ds.weights > 0)

    def test_correlation_knob(self):
        tight = correlated_zipf_dataset(800, 2, correlation=1.0, churn=0.0,
                                        seed=4)
        loose = correlated_zipf_dataset(800, 2, correlation=0.2, churn=0.0,
                                        seed=4)
        def logcorr(ds):
            logs = np.log(ds.weights)
            return np.corrcoef(logs[:, 0], logs[:, 1])[0, 1]
        assert logcorr(tight) > logcorr(loose)

    def test_validation(self):
        with pytest.raises(ValueError, match="correlation"):
            correlated_zipf_dataset(10, 2, correlation=1.5)
        with pytest.raises(ValueError, match="churn"):
            correlated_zipf_dataset(10, 2, churn=1.0)


class TestIPTrace:
    def test_deterministic_and_sized(self):
        t1 = generate_ip_trace(SMALL_TRACE, seed=1)
        t2 = generate_ip_trace(SMALL_TRACE, seed=1)
        assert 0 < len(t1) <= 3 * 1500
        assert [r.four_tuple for r in t1[:20]] == [r.four_tuple for r in t2[:20]]

    def test_4tuples_persist_across_periods(self):
        """The flow pool makes the same 4-tuple recur across periods —
        required for dispersed min/L1 aggregates over 4-tuple keys."""
        trace = generate_ip_trace(SMALL_TRACE, seed=9)
        ds = ip_dispersed_dataset(trace, "4tuple", "bytes")
        persists = ((ds.weights > 0).sum(axis=1) >= 2).sum()
        assert persists > 0.1 * ds.n_keys

    def test_flow_fields_sane(self):
        for record in generate_ip_trace(SMALL_TRACE, seed=2)[:200]:
            assert record.packets >= 1
            assert record.bytes >= 40
            assert 0 <= record.period < 3
            assert 0 <= record.dst_ip < 300

    def test_colocated_destip_assignments(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=3)
        ds = ip_colocated_dataset(trace, "destip")
        assert ds.assignments == ["bytes", "packets", "flows", "uniform"]
        assert np.all(ds.column("uniform") == 1.0)
        # bytes >= packets * 40 per key (min packet size)
        assert np.all(ds.column("bytes") >= 40 * ds.column("packets"))

    def test_colocated_4tuple_assignments(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=3)
        ds = ip_colocated_dataset(trace, "4tuple")
        assert ds.assignments == ["bytes", "packets", "uniform"]

    def test_colocated_period_restriction(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=4)
        full = ip_colocated_dataset(trace, "destip")
        hour0 = ip_colocated_dataset(trace, "destip", period=0)
        assert hour0.total("packets") < full.total("packets")

    def test_dispersed_periods_and_churn(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=5)
        ds = ip_dispersed_dataset(trace, "destip", "bytes")
        assert ds.assignments == ["period1", "period2", "period3"]
        # churn: some keys must be absent from some period
        assert np.any(ds.weights == 0.0)
        assert np.all((ds.weights > 0).any(axis=1))

    def test_dispersed_totals_match_trace(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=6)
        ds = ip_dispersed_dataset(trace, "destip", "bytes", periods=[0])
        expected = sum(r.bytes for r in trace if r.period == 0)
        assert ds.total("period1") == pytest.approx(expected)

    def test_byte_skew_is_heavy(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=7)
        ds = ip_colocated_dataset(trace, "destip")
        col = np.sort(ds.column("bytes"))[::-1]
        top_decile = col[: max(1, len(col) // 10)].sum()
        assert top_decile / col.sum() > 0.5  # top 10% of keys >50% of bytes

    def test_attributes_enable_predicates(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=8)
        ds = ip_colocated_dataset(trace, "4tuple")
        assert set(ds.attributes) == {"dest_ip", "dst_port", "src_ip"}
        ports = set(ds.attribute("dst_port"))
        assert 80 in ports or 443 in ports

    def test_key_kind_validation(self):
        trace = generate_ip_trace(SMALL_TRACE, seed=8)
        with pytest.raises(ValueError, match="key_kind"):
            ip_colocated_dataset(trace, "five_tuple")
        with pytest.raises(ValueError, match="weight"):
            ip_dispersed_dataset(trace, "destip", "latency")


class TestNetflix:
    def test_shape_and_month_names(self):
        ds = netflix_monthly_dataset(NetflixConfig(n_movies=150), seed=1)
        assert ds.n_keys == 150
        assert ds.assignments[:3] == ["jan", "feb", "mar"]
        assert ds.n_assignments == 12

    def test_deterministic(self):
        cfg = NetflixConfig(n_movies=60)
        np.testing.assert_array_equal(
            netflix_monthly_dataset(cfg, seed=2).weights,
            netflix_monthly_dataset(cfg, seed=2).weights,
        )

    def test_catalogue_growth(self):
        """Later months must have at least as many active movies (newcomers
        appear, nothing is removed structurally)."""
        ds = netflix_monthly_dataset(NetflixConfig(n_movies=400), seed=3)
        zero_before = (ds.weights[:, 0] == 0).sum()
        assert zero_before > 0  # some movies not yet released in january

    def test_month_correlation(self):
        ds = netflix_monthly_dataset(NetflixConfig(n_movies=800), seed=4)
        active = (ds.weights[:, 0] > 0) & (ds.weights[:, 1] > 0)
        logs = np.log1p(ds.weights[active][:, :2])
        assert np.corrcoef(logs[:, 0], logs[:, 1])[0, 1] > 0.7

    def test_genre_attribute(self):
        ds = netflix_monthly_dataset(NetflixConfig(n_movies=50), seed=5)
        assert len(ds.attribute("genre")) == 50


class TestStocks:
    CFG = StocksConfig(n_tickers=200, n_days=6)

    def test_colocated_layout(self):
        ds = stocks_daily_dataset(self.CFG, seed=1, mode="colocated", day=2)
        assert ds.assignments == [
            "open", "high", "low", "close", "adj_close", "volume"
        ]
        assert ds.n_keys == 200

    def test_price_ordering(self):
        ds = stocks_daily_dataset(self.CFG, seed=2, mode="colocated", day=0)
        assert np.all(ds.column("high") >= ds.column("low"))
        assert np.all(ds.column("high") >= ds.column("close") - 1e-9)
        assert np.all(ds.column("low") <= ds.column("open") + 1e-9)

    def test_prices_strongly_correlated_across_days(self):
        """The paper stresses price attributes are near-identical day to
        day; volumes are much noisier."""
        prices = stocks_daily_dataset(self.CFG, seed=3, mode="dispersed",
                                      attribute="high")
        volumes = stocks_daily_dataset(self.CFG, seed=3, mode="dispersed",
                                       attribute="volume")
        def day_corr(ds):
            w = ds.weights
            alive = (w[:, 0] > 0) & (w[:, 1] > 0)
            logs = np.log(w[alive][:, :2])
            return np.corrcoef(logs[:, 0], logs[:, 1])[0, 1]
        assert day_corr(prices) > 0.99
        assert day_corr(volumes) < day_corr(prices)

    def test_volume_zeros_exist_prices_do_not(self):
        ds_vol = stocks_daily_dataset(self.CFG, seed=4, mode="dispersed",
                                      attribute="volume")
        ds_price = stocks_daily_dataset(self.CFG, seed=4, mode="dispersed",
                                        attribute="high")
        assert np.any(ds_vol.weights == 0.0)
        assert np.all(ds_price.weights > 0.0)

    def test_dispersed_day_selection(self):
        ds = stocks_daily_dataset(self.CFG, seed=5, mode="dispersed",
                                  attribute="high", days=[0, 3])
        assert ds.assignments == ["day1", "day4"]

    def test_validation(self):
        with pytest.raises(ValueError, match="day"):
            stocks_daily_dataset(self.CFG, mode="colocated", day=99)
        with pytest.raises(ValueError, match="mode"):
            stocks_daily_dataset(self.CFG, mode="streaming")
        with pytest.raises(ValueError, match="day"):
            stocks_daily_dataset(self.CFG, mode="dispersed", days=[99])
