"""Tests for the analytic conditional-variance path.

The key check: the analytic per-run ΣV must agree with the empirical
average of realized squared errors (they estimate the same quantity), and
the deterministic dominance relations of Section 8 must hold per draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_bottomk_summary
from repro.estimators.dispersed import (
    l1_estimator,
    lset_estimator,
    max_estimator,
    sset_estimator,
)
from repro.evaluation.analytic import (
    colocated_inclusion_p,
    make_context,
    sv_colocated_inclusive,
    sv_independent_min,
    sv_l1,
    sv_lset,
    sv_plain_rc,
    sv_sset,
    variance_from_probabilities,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def context_for(dataset, method="shared_seed", k=5, seed=0):
    rng = np.random.default_rng([seed])
    draw = get_rank_method(method).draw(FAMILY, dataset.weights, rng)
    return draw, make_context(dataset.weights, draw, k, FAMILY)


class TestContext:
    def test_member_matches_summary(self):
        dataset = make_random_dataset(seed=51)
        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        ctx = make_context(dataset.weights, draw, 4, FAMILY)
        summary = build_bottomk_summary(
            dataset.weights, draw, 4, dataset.assignments, FAMILY
        )
        np.testing.assert_array_equal(
            ctx.member[summary.positions], summary.member
        )
        np.testing.assert_allclose(
            ctx.thresholds[summary.positions], summary.thresholds
        )
        assert ctx.union_size() == summary.n_union

    def test_nonmembers_have_no_membership(self):
        dataset = make_random_dataset(seed=51)
        _, ctx = context_for(dataset, k=4)
        assert ctx.member.sum(axis=0).max() <= 4

    def test_union_size_counts_distinct(self):
        dataset = make_random_dataset(seed=52)
        _, ctx = context_for(dataset, k=3)
        assert ctx.union_size() == int(ctx.member.any(axis=1).sum())


class TestAgreementWithEmpirical:
    """Analytic ΣV ≈ empirical squared-error ΣV (same estimand)."""

    @pytest.mark.parametrize(
        "label", ["max", "min-l", "min-s", "l1-l", "plain"]
    )
    def test_dispersed_estimators(self, label):
        dataset = make_random_dataset(n_keys=15, seed=53)
        names = tuple(dataset.assignments)
        cols = [0, 1, 2]
        m = len(cols)
        spec_min = AggregationSpec("min", names)
        f_min = key_values(dataset, spec_min)
        f_max = key_values(dataset, AggregationSpec("max", names))
        f_l1 = key_values(dataset, AggregationSpec("l1", names))

        def estimate(summary):
            return {
                "max": lambda: max_estimator(summary, names),
                "min-l": lambda: lset_estimator(summary, spec_min),
                "min-s": lambda: sset_estimator(summary, spec_min),
                "l1-l": lambda: l1_estimator(summary, names, "l"),
                "plain": lambda: __import__(
                    "repro.estimators.rank_conditioning",
                    fromlist=["plain_rc_from_summary"],
                ).plain_rc_from_summary(summary, "w1"),
            }[label]()

        def analytic(ctx):
            return {
                "max": lambda: sv_sset(ctx, cols, 1, f_max),
                "min-l": lambda: sv_lset(ctx, cols, m, f_min),
                "min-s": lambda: sv_sset(ctx, cols, m, f_min),
                "l1-l": lambda: sv_l1(ctx, cols, "l"),
                "plain": lambda: sv_plain_rc(ctx, 0),
            }[label]()

        f_true = {"max": f_max, "min-l": f_min, "min-s": f_min,
                  "l1-l": f_l1, "plain": dataset.column("w1")}[label]
        runs = 4000
        empirical = 0.0
        analytic_total = 0.0
        method = get_rank_method("shared_seed")
        for run in range(runs):
            rng = np.random.default_rng([9, run])
            draw = method.draw(FAMILY, dataset.weights, rng)
            summary = build_bottomk_summary(
                dataset.weights, draw, 5, dataset.assignments, FAMILY,
                mode="dispersed",
            )
            empirical += estimate(summary).squared_error_sum(f_true)
            ctx = make_context(dataset.weights, draw, 5, FAMILY)
            analytic_total += analytic(ctx)
        empirical /= runs
        analytic_total /= runs
        assert empirical == pytest.approx(analytic_total, rel=0.2)

    def test_colocated_inclusive(self):
        dataset = make_random_dataset(n_keys=15, seed=54)
        f = dataset.column("w1")
        spec = AggregationSpec("single", ("w1",))
        from repro.estimators.colocated import colocated_estimator

        runs = 4000
        empirical = 0.0
        analytic_total = 0.0
        method = get_rank_method("shared_seed")
        for run in range(runs):
            rng = np.random.default_rng([11, run])
            draw = method.draw(FAMILY, dataset.weights, rng)
            summary = build_bottomk_summary(
                dataset.weights, draw, 5, dataset.assignments, FAMILY
            )
            empirical += colocated_estimator(summary, spec).squared_error_sum(f)
            ctx = make_context(dataset.weights, draw, 5, FAMILY)
            analytic_total += sv_colocated_inclusive(ctx, f)
        assert empirical / runs == pytest.approx(analytic_total / runs, rel=0.2)


class TestDominanceRelations:
    """Section 8 inequalities hold per draw (deterministically)."""

    def test_lset_p_at_least_sset_p(self):
        dataset = make_random_dataset(n_keys=40, seed=55)
        cols = [0, 1, 2]
        f_min = key_values(
            dataset, AggregationSpec("min", tuple(dataset.assignments))
        )
        for run in range(50):
            _, ctx = context_for(dataset, seed=run)
            assert sv_lset(ctx, cols, 3, f_min) <= sv_sset(
                ctx, cols, 3, f_min
            ) * (1 + 1e-9)

    def test_inclusive_dominates_plain(self):
        """Lemma 8.2: per-draw inclusive ΣV <= plain ΣV for each b."""
        dataset = make_random_dataset(n_keys=40, seed=56)
        for run in range(50):
            _, ctx = context_for(dataset, seed=run)
            for b in range(dataset.n_assignments):
                f = dataset.weights[:, b]
                assert sv_colocated_inclusive(ctx, f) <= sv_plain_rc(
                    ctx, b
                ) * (1 + 1e-9)

    def test_coordinated_min_dominates_independent_min(self):
        """Eq. (15) >= Eq. (16) pointwise, hence lower variance."""
        dataset = make_random_dataset(n_keys=40, seed=57)
        cols = [0, 1, 2]
        f_min = dataset.weights.min(axis=1)
        for run in range(30):
            _, ctx_coord = context_for(dataset, "shared_seed", seed=run)
            _, ctx_ind = context_for(dataset, "independent", seed=run)
            coord = sv_lset(ctx_coord, cols, 3, f_min)
            independent = sv_independent_min(ctx_ind, cols)
            assert coord <= independent * (1 + 1e-9)

    def test_max_estimator_beats_direct_max_sample_bound(self):
        """Lemma 8.4: ΣV[a^max] <= ΣV of RC over a bottom-k of (I, w^max).

        Checked via averaged analytic values: the max estimator's p uses
        θ_min while the direct sketch of w^max with ranks r^min has the
        same thresholds, so per-draw equality-or-domination holds; we
        assert the averaged relation with slack.
        """
        dataset = make_random_dataset(n_keys=40, seed=58)
        cols = [0, 1, 2]
        f_max = dataset.weights.max(axis=1)
        method = get_rank_method("shared_seed")
        total_max_est = 0.0
        total_direct = 0.0
        runs = 100
        for run in range(runs):
            rng = np.random.default_rng([13, run])
            draw = method.draw(FAMILY, dataset.weights, rng)
            ctx = make_context(dataset.weights, draw, 5, FAMILY)
            total_max_est += sv_sset(ctx, cols, 1, f_max)
            # direct RC over the derived sketch of (I, w^max) with r^min:
            min_ranks = draw.ranks.min(axis=1)
            finite = np.sort(min_ranks[np.isfinite(min_ranks)])
            r_k, r_k1 = finite[4], finite[5]
            member = min_ranks < r_k1
            theta = np.where(member, r_k1, r_k)
            p = FAMILY.cdf_matrix(f_max, theta)
            total_direct += variance_from_probabilities(f_max, p)
        assert total_max_est <= total_direct * 1.05

    def test_l1_variance_below_min_plus_max(self):
        """Lemma 8.6: ΣV[L1] <= ΣV[min] + ΣV[max] per draw."""
        dataset = make_random_dataset(n_keys=40, seed=59)
        cols = [0, 1, 2]
        f_min = dataset.weights.min(axis=1)
        f_max = dataset.weights.max(axis=1)
        for run in range(30):
            _, ctx = context_for(dataset, seed=run)
            l1 = sv_l1(ctx, cols, "l")
            bound = sv_lset(ctx, cols, 3, f_min) + sv_sset(ctx, cols, 1, f_max)
            assert l1 <= bound * (1 + 1e-9)

    def test_l1_variance_nonnegative(self):
        dataset = make_random_dataset(n_keys=40, seed=60)
        for run in range(30):
            _, ctx = context_for(dataset, seed=run)
            assert sv_l1(ctx, [0, 1, 2], "l") >= 0.0
            assert sv_l1(ctx, [0, 1, 2], "s") >= 0.0


class TestValidation:
    def test_l1_requires_consistent(self):
        dataset = make_random_dataset(seed=61)
        _, ctx = context_for(dataset, "independent")
        with pytest.raises(ValueError, match="consistent"):
            sv_l1(ctx, [0, 1, 2])

    def test_variance_from_probabilities_guards(self):
        with pytest.raises(ValueError, match="existence"):
            variance_from_probabilities(np.array([1.0]), np.array([0.0]))

    def test_sset_independent_needs_min(self):
        dataset = make_random_dataset(seed=61)
        _, ctx = context_for(dataset, "independent")
        with pytest.raises(ValueError, match="min-dependence"):
            sv_sset(ctx, [0, 1, 2], 1, dataset.weights.max(axis=1))

    def test_colocated_p_in_unit_interval(self):
        dataset = make_random_dataset(seed=62)
        for method in ("shared_seed", "independent"):
            _, ctx = context_for(dataset, method)
            p = colocated_inclusion_p(ctx)
            positive = dataset.weights.max(axis=1) > 0
            assert np.all(p[positive] > 0.0)
            assert np.all(p <= 1.0 + 1e-12)
