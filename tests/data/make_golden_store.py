"""Regenerate the golden v1 store blob pinned by tests/test_store_codec.py.

Run (only on a deliberate format bump, alongside a FORMAT_VERSION review):

    PYTHONPATH=src python tests/data/make_golden_store.py
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

from test_store_codec import golden_bundle  # noqa: E402

from repro.store.codec import encode  # noqa: E402

if __name__ == "__main__":
    out = pathlib.Path(__file__).parent / "golden_store_v1.cws"
    blob = encode(golden_bundle())
    out.write_bytes(blob)
    print(f"wrote {out} ({len(blob)} bytes)")
