"""Tests for AdjustedWeights and estimator plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.base import AdjustedWeights, combine_difference


class TestAdjustedWeights:
    def test_total(self):
        aw = AdjustedWeights(np.array([0, 2]), np.array([1.5, 2.5]))
        assert aw.total() == 4.0
        assert len(aw) == 2

    def test_subpopulation_reads_mask_at_positions(self):
        aw = AdjustedWeights(np.array([0, 2, 4]), np.array([1.0, 2.0, 4.0]))
        mask = np.array([True, False, False, True, True])
        assert aw.subpopulation(mask) == 5.0

    def test_dense(self):
        aw = AdjustedWeights(np.array([1, 3]), np.array([2.0, 5.0]))
        np.testing.assert_array_equal(aw.dense(5), [0, 2.0, 0, 5.0, 0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            AdjustedWeights(np.array([0, 1]), np.array([1.0]))

    def test_squared_error_sum_identity(self):
        """Must equal the naive dense computation."""
        rng = np.random.default_rng(0)
        f = rng.random(10)
        positions = np.array([1, 4, 7])
        values = rng.random(3) * 3
        aw = AdjustedWeights(positions, values)
        dense = aw.dense(10)
        naive = float(((dense - f) ** 2).sum())
        assert aw.squared_error_sum(f) == pytest.approx(naive)

    def test_squared_error_sum_zero_when_exact(self):
        f = np.array([0.0, 2.0, 0.0])
        aw = AdjustedWeights(np.array([1]), np.array([2.0]))
        assert aw.squared_error_sum(f) == pytest.approx(0.0)

    def test_ratio_estimate(self):
        """Σ a(i)·h(i)/f(i) estimates Σ h — here checked arithmetically."""
        aw = AdjustedWeights(np.array([0, 1]), np.array([4.0, 6.0]))
        h_over_f = np.array([0.5, 2.0, 1.0])
        mask = np.array([True, True, True])
        assert aw.ratio_estimate(mask, h_over_f) == pytest.approx(4 * 0.5 + 6 * 2)

    def test_ratio_estimate_respects_mask(self):
        aw = AdjustedWeights(np.array([0, 1]), np.array([4.0, 6.0]))
        h_over_f = np.array([0.5, 2.0])
        mask = np.array([False, True])
        assert aw.ratio_estimate(mask, h_over_f) == pytest.approx(12.0)


class TestCombineDifference:
    def test_overlapping_positions_subtract(self):
        upper = AdjustedWeights(np.array([0, 1]), np.array([5.0, 3.0]), "max")
        lower = AdjustedWeights(np.array([1]), np.array([1.0]), "min")
        combined = combine_difference(upper, lower)
        assert combined.positions.tolist() == [0, 1]
        np.testing.assert_allclose(combined.values, [5.0, 2.0])

    def test_lower_only_key_goes_negative(self):
        upper = AdjustedWeights(np.array([0]), np.array([5.0]))
        lower = AdjustedWeights(np.array([2]), np.array([1.0]))
        combined = combine_difference(upper, lower)
        assert combined.values.tolist() == [5.0, -1.0]

    def test_label_defaults_to_pair(self):
        upper = AdjustedWeights(np.array([0]), np.array([1.0]), "a")
        lower = AdjustedWeights(np.array([0]), np.array([1.0]), "b")
        assert combine_difference(upper, lower).label == "a-b"
