"""Tests for the evaluation runner and the per-figure experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.datasets.synthetic import correlated_zipf_dataset
from repro.evaluation.experiments import (
    colocated_tasks,
    dispersed_tasks,
    experiment_colocated_inclusive,
    experiment_coord_vs_indep,
    experiment_dispersed_estimators,
    experiment_jaccard,
    experiment_sharing_index,
    experiment_sset_vs_lset,
    experiment_unweighted_baseline,
    experiment_variance_vs_size,
    table_totals,
)
from repro.evaluation.metrics import (
    empirical_sigma_v,
    normalized,
    sharing_index_of_summaries,
)
from repro.evaluation.runner import run_sharing_index, run_sigma_v

DATASET = correlated_zipf_dataset(300, 3, seed=99, churn=0.15)
K_VALUES = [5, 20]


class TestRunner:
    def test_deterministic(self):
        tasks = dispersed_tasks(DATASET, include_singles=False)
        r1 = run_sigma_v(DATASET, tasks, K_VALUES, runs=3, seed=5)
        r2 = run_sigma_v(DATASET, tasks, K_VALUES, runs=3, seed=5)
        for name in r1.sigma_v:
            assert r1.sigma_v[name] == r2.sigma_v[name]

    def test_analytic_and_empirical_agree_statistically(self):
        tasks = [
            t for t in dispersed_tasks(DATASET, include_independent=False)
            if t.name == "coord max"
        ]
        analytic = run_sigma_v(DATASET, tasks, [20], runs=30, seed=1)
        empirical = run_sigma_v(
            DATASET, tasks, [20], runs=400, seed=1, metric="empirical"
        )
        a = analytic.sigma_v["coord max"][20]
        e = empirical.sigma_v["coord max"][20]
        assert e == pytest.approx(a, rel=0.35)

    def test_union_sizes_recorded(self):
        tasks = dispersed_tasks(DATASET, include_singles=False)
        result = run_sigma_v(DATASET, tasks, K_VALUES, runs=3, seed=2)
        assert set(result.union_sizes) == {"shared_seed", "independent"}
        for sizes in result.union_sizes.values():
            assert sizes[5] < sizes[20]

    def test_normalized_series(self):
        tasks = dispersed_tasks(DATASET, include_singles=False,
                                include_independent=False)
        result = run_sigma_v(DATASET, tasks, K_VALUES, runs=3, seed=3)
        for task in tasks:
            denominator = task.aggregate_value**2
            for i, k in enumerate(result.k_values):
                expected = result.sigma_v[task.name][k] / denominator
                assert result.normalized_series(task.name)[i] == pytest.approx(
                    expected
                )

    def test_ratio(self):
        tasks = dispersed_tasks(DATASET, include_singles=False)
        result = run_sigma_v(DATASET, tasks, [5], runs=3, seed=4)
        ratio = result.ratio("ind min", "coord min-l")[0]
        assert ratio == pytest.approx(
            result.sigma_v["ind min"][5] / result.sigma_v["coord min-l"][5]
        )

    def test_metric_validation(self):
        tasks = dispersed_tasks(DATASET, include_singles=False)
        with pytest.raises(ValueError, match="metric"):
            run_sigma_v(DATASET, tasks, [5], runs=1, metric="exact")

    def test_missing_sigma_v_detected(self):
        task = dispersed_tasks(DATASET, include_singles=False)[0]
        task.sigma_v = None
        with pytest.raises(ValueError, match="no analytic sigma_v"):
            run_sigma_v(DATASET, [task], [5], runs=1)

    def test_sharing_index_bounds_and_order(self):
        out = run_sharing_index(DATASET, [5, 20], runs=4, seed=6)
        m = DATASET.n_assignments
        for method, per_k in out.items():
            for value in per_k.values():
                assert 1.0 / m - 1e-9 <= value <= 1.0 + 1e-9
        for k in (5, 20):
            assert out["shared_seed"][k] <= out["independent"][k]


class TestMetricsHelpers:
    def test_normalized(self):
        f = np.array([1.0, 3.0])
        assert normalized(8.0, f) == pytest.approx(0.5)
        assert normalized(8.0, np.zeros(2)) == float("inf")

    def test_empirical_sigma_v_requires_runs(self):
        with pytest.raises(ValueError, match="at least one"):
            empirical_sigma_v([], np.ones(2))

    def test_sharing_index_of_summaries(self):
        from repro import summarize_dataset

        summaries = [
            summarize_dataset(DATASET, k=5, seed=s) for s in range(3)
        ]
        value = sharing_index_of_summaries(summaries)
        assert 1.0 / 3 <= value <= 1.0


class TestExperimentShapes:
    """Each figure function must run and satisfy its qualitative claim."""

    def test_f3_coordination_wins(self):
        res = experiment_coord_vs_indep(DATASET, K_VALUES, runs=5, seed=1)
        ratios = res.series["ratio ind/coord"]
        assert all(r > 10 for r in ratios)
        assert ratios[0] > ratios[-1]  # gap shrinks with k
        assert "F3" in res.render()

    def test_f3_gap_grows_with_assignments(self):
        small = correlated_zipf_dataset(300, 2, seed=50, churn=0.1)
        large = correlated_zipf_dataset(300, 5, seed=50, churn=0.1)
        r2 = experiment_coord_vs_indep(small, [10], runs=5, seed=2)
        r5 = experiment_coord_vs_indep(large, [10], runs=5, seed=2)
        assert (
            r5.series["ratio ind/coord"][0] > r2.series["ratio ind/coord"][0]
        )

    def test_f4_multi_assignment_estimators_close_to_singles(self):
        res = experiment_dispersed_estimators(
            DATASET, K_VALUES, runs=5, seed=3, include_independent=False
        )
        singles = [
            res.series[name][-1]
            for name in res.series
            if name.startswith("single[")
        ]
        assert res.series["coord min-l"][-1] <= min(singles) * 1.05
        assert res.series["coord L1-l"][-1] <= res.series["coord max"][-1] * 1.05

    def test_f8_lset_dominates(self):
        res = experiment_sset_vs_lset(DATASET, K_VALUES, runs=5, seed=4)
        for label in ("min-s/min-l", "L1-s/L1-l"):
            assert all(r >= 1.0 - 1e-9 for r in res.series[label])

    def test_f9_inclusive_beats_plain(self):
        res = experiment_colocated_inclusive(DATASET, K_VALUES, runs=5, seed=5)
        for label, values in res.series.items():
            assert all(v <= 1.0 + 1e-9 for v in values), label
        # independent-union ratios are smaller than coordinated ones
        for b in DATASET.assignments:
            assert (
                res.series[f"ind/{b}"][0] <= res.series[f"coord/{b}"][0] + 1e-9
            )

    def test_f12_variance_vs_size_table(self):
        res = experiment_variance_vs_size(
            DATASET, "w1", K_VALUES, runs=5, seed=6
        )
        title, headers, rows = res.tables[0]
        assert len(rows) == len(K_VALUES)
        # independent unions hold more distinct keys than coordinated
        for row in rows:
            assert row[2] > row[1]
        assert "F12" in res.render()

    def test_f17_sharing_index(self):
        res = experiment_sharing_index(DATASET, K_VALUES, runs=4, seed=7)
        coord = res.series["coordinated"]
        indep = res.series["independent"]
        assert all(c <= i + 1e-9 for c, i in zip(coord, indep))

    def test_table_totals(self):
        res = table_totals(
            DATASET, [("w1", "w2"), tuple(DATASET.assignments)], "T2"
        )
        per_assignment = res.tables[0][2]
        assert len(per_assignment) == DATASET.n_assignments
        norms = res.tables[1][2]
        for row in norms:
            label, mn, mx, l1 = row
            assert mn <= mx
            assert l1 == pytest.approx(mx - mn)

    def test_jaccard_experiment(self):
        res = experiment_jaccard(DATASET, "w1", "w2", k=150, runs=4, seed=8)
        rows = dict((r[0], r[1]) for r in res.tables[0][2])
        exact = rows["exact weighted Jaccard"]
        mean = rows["mean of 4 k-mins estimates (k=150)"]
        assert mean == pytest.approx(exact, abs=0.15)

    def test_unweighted_baseline_loses(self):
        res = experiment_unweighted_baseline(DATASET, [10], runs=4, seed=9)
        for values in res.series.values():
            assert values[0] > 5.0

    def test_render_outputs_series_table(self):
        res = experiment_coord_vs_indep(DATASET, [5], runs=2, seed=10)
        text = res.render()
        assert "ratio ind/coord" in text
        assert "shape check" in text
