"""Service answers are exact: live + stored == one uninterrupted stream.

The acceptance property of the always-on service: a query served over
(live window merged with stored buckets) returns **bit-identical**
estimates to an offline :class:`~repro.engine.queries.QueryEngine` run
over the equivalently merged summaries — here pinned against the
strongest offline reference, a *single* :class:`ShardedSummarizer` fed
the whole event stream with no service machinery at all.

Hypothesis drives arbitrary interleavings of the service lifecycle:
multi-batch ingestion, mid-bucket durability flushes (followed by more
events for the *same* keys), minute-boundary rotations, checkpoint +
restart (a fresh :class:`LiveWindowManager` resuming from the store),
crashes right after a flush (restart with no clean checkpoint — the
flush's own checkpoint must resume the full window state), and hour/day
compactions, in any order.  Keys never recur across time
buckets (the store's documented key-disjointness contract for exact
merges); within a bucket they repeat freely.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine, jaccard_from_summary
from repro.service.config import NamespaceConfig
from repro.service.planner import QueryPlanner
from repro.service.windows import LiveWindowManager
from repro.store import SummaryStore

T0 = datetime(2026, 7, 28, 12, 0, 0, tzinfo=timezone.utc).timestamp()
NS = NamespaceConfig("web", ("h1", "h2"), k=8, n_shards=2, salt=21)

_weights = st.floats(
    min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def lifecycle_plans(draw):
    """A service lifecycle: ingests, clock advances, restarts, compactions.

    Returns a list of ops.  Keys carry a per-segment offset, so events in
    different time buckets are key-disjoint by construction while repeats
    within a bucket exercise live-window aggregation.
    """
    ops = []
    n_segments = draw(st.integers(1, 3))
    for segment in range(n_segments):
        for _ in range(draw(st.integers(1, 2))):
            n = draw(st.integers(1, 10))
            ids = draw(st.lists(st.integers(0, 30), min_size=n, max_size=n))
            keys = [segment * 100_000 + key_id for key_id in ids]
            w1 = draw(st.lists(_weights, min_size=n, max_size=n))
            w2 = draw(st.lists(_weights, min_size=n, max_size=n))
            ops.append(("ingest", keys, w1, w2))
            if draw(st.booleans()):
                ops.append(("restart",))
            if draw(st.booleans()):
                # mid-bucket flush: durability publish; later ingests may
                # repeat the same keys in the same bucket and must stay
                # exact (the flush artifact is overwritten, not joined)
                ops.append(("flush",))
                if draw(st.booleans()):
                    # crash right after the flush: restart WITHOUT a clean
                    # checkpoint() — the flush's own checkpoint must
                    # resume the full window state, losing nothing
                    ops.append(("crash",))
        if segment < n_segments - 1:
            ops.append(("advance",))
            if draw(st.booleans()):
                ops.append(("rotate",))
            if draw(st.booleans()):
                ops.append(("compact", draw(st.sampled_from(["hour", "day"]))))
    if draw(st.booleans()):
        ops.append(("restart",))
    return ops


class Clock:
    def __init__(self) -> None:
        self.now = T0

    def __call__(self) -> float:
        return self.now


@settings(deadline=None)
@given(plan=lifecycle_plans())
def test_service_view_matches_uninterrupted_stream(tmp_path_factory, plan):
    root = tmp_path_factory.mktemp("svc")
    clock = Clock()
    manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
    offline = NS.make_summarizer()

    for op in plan:
        if op[0] == "ingest":
            _tag, keys, w1, w2 = op
            weights = {
                "h1": np.asarray(w1, dtype=float),
                "h2": np.asarray(w2, dtype=float),
            }
            manager.ingest("web", keys, weights)
            offline.ingest_multi(keys, weights)
        elif op[0] == "advance":
            clock.now += 60.0
        elif op[0] == "rotate":
            manager.rotate()
        elif op[0] == "flush":
            manager.rotate(force=True)
        elif op[0] == "restart":
            manager.checkpoint()
            manager = LiveWindowManager(
                SummaryStore(root, create=False), (NS,), clock=clock
            )
        elif op[0] == "crash":  # only ever drawn right after a flush
            manager = LiveWindowManager(
                SummaryStore(root, create=False), (NS,), clock=clock
            )
        elif op[0] == "compact":
            manager.compact(to=op[1])

    reference = QueryEngine(offline.summary())
    planner = QueryPlanner(manager)
    for function in ("max", "min", "l1"):
        spec = AggregationSpec(function, ("h1", "h2"))
        served = planner.estimate("web", function, ("h1", "h2"))
        assert served["estimate"] == reference.estimate(spec), (
            f"{function} diverged under plan {plan!r}"
        )
    single = AggregationSpec("single", ("h1",))
    assert (
        planner.estimate("web", "single", ("h1",))["estimate"]
        == reference.estimate(single)
    )
    assert (
        planner.jaccard("web", ("h1", "h2"))["estimate"]
        == jaccard_from_summary(reference.summary, ("h1", "h2"), "l")
    )
    # subpopulation selection is exact too
    subset = [0, 1, 100_000, 2]
    from repro.core.predicates import key_in

    assert (
        planner.estimate("web", "max", ("h1", "h2"), keys=subset)["estimate"]
        == reference.estimate(
            AggregationSpec("max", ("h1", "h2")), predicate=key_in(subset)
        )
    )


@settings(deadline=None, max_examples=25)
@given(
    n_buckets=st.integers(2, 4),
    per_bucket=st.integers(1, 8),
    seed=st.integers(0, 2**32 - 1),
)
def test_stored_only_view_matches_merged_engine(
    tmp_path_factory, n_buckets, per_bucket, seed
):
    """After every window rotated out, the service equals from_store."""
    root = tmp_path_factory.mktemp("svc")
    clock = Clock()
    manager = LiveWindowManager(SummaryStore(root), (NS,), clock=clock)
    rng = np.random.default_rng(seed)
    for bucket in range(n_buckets):
        keys = [bucket * 1000 + i for i in range(per_bucket)]
        w1 = rng.pareto(1.3, per_bucket) + 0.01
        manager.ingest("web", keys, {"h1": w1, "h2": w1 * 3.0})
        clock.now += 60.0
    manager.rotate()  # final window out; live view now empty
    served = QueryPlanner(manager).estimate("web", "max", ("h1", "h2"))
    offline = QueryEngine.from_store(manager.store, "web").estimate(
        AggregationSpec("max", ("h1", "h2"))
    )
    assert served["estimate"] == offline
    assert served["sources"]["live_events"] == 0
