"""SummaryStore behavior: buckets, manifest, atomic writes, exact rollups.

The acceptance property pinned here: a compacted (rolled-up) store answers
QueryEngine estimates *identically* to merging the raw shard artifacts in
memory — compaction is pure, exact sketch algebra.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.engine.sharded import ShardedSummarizer
from repro.ranks.families import IppsRanks
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import BottomKStreamSampler
from repro.store import (
    CodecError,
    SketchBundle,
    SummaryStore,
    bucket_for,
    bucket_granularity,
    coarsen_bucket,
)

SALT = 13
ASSIGNMENTS = ["h1", "h2"]


def make_bundle(key_range, seed=0, k=40, salt=SALT) -> SketchBundle:
    """Bundle over a dedicated key range (disjoint ranges merge exactly)."""
    rng = np.random.default_rng(seed)
    engine = ShardedSummarizer(
        k=k, assignments=ASSIGNMENTS, n_shards=2, hasher=KeyHasher(salt)
    )
    keys = np.arange(*key_range)
    for name in ASSIGNMENTS:
        engine.ingest(name, keys, rng.pareto(1.3, len(keys)) + 0.05)
    return engine.sketch_bundle()


class TestBuckets:
    @pytest.mark.parametrize(
        "bucket,granularity",
        [
            ("20260728T1201", "minute"),
            ("20260728T12", "hour"),
            ("20260728", "day"),
        ],
    )
    def test_granularity_inference(self, bucket, granularity):
        assert bucket_granularity(bucket) == granularity

    @pytest.mark.parametrize(
        "bad", ["2026-07-28", "20260728T", "20261340", "20260728T2561", "x"]
    )
    def test_invalid_bucket_ids(self, bad):
        with pytest.raises(ValueError, match="bucket"):
            bucket_granularity(bad)

    def test_coarsen(self):
        assert coarsen_bucket("20260728T1201", "hour") == "20260728T12"
        assert coarsen_bucket("20260728T1201", "day") == "20260728"
        assert coarsen_bucket("20260728T12", "hour") == "20260728T12"

    def test_coarsen_rejects_refinement(self):
        with pytest.raises(ValueError, match="finer"):
            coarsen_bucket("20260728", "minute")

    def test_bucket_for(self):
        when = datetime(2026, 7, 28, 12, 1, 30, tzinfo=timezone.utc)
        assert bucket_for(when) == "20260728T1201"
        assert bucket_for(when, "hour") == "20260728T12"
        assert bucket_for(when.timestamp(), "day") == "20260728"

    def test_bucket_for_unknown_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            bucket_for(0.0, "week")


class TestWriteRead:
    def test_write_load_round_trip(self, tmp_path):
        store = SummaryStore(tmp_path)
        bundle = make_bundle((0, 500))
        entry = store.write("flows", "20260728T1201", bundle)
        assert entry.kind == "bottomk"
        assert entry.assignments == ("h1", "h2")
        assert store.load(entry).equals(bundle)
        assert store.read("flows", "20260728T1201", entry.part).equals(bundle)

    def test_manifest_survives_reopen(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T1201", make_bundle((0, 100)))
        reopened = SummaryStore(tmp_path, create=False)
        assert [e.bucket for e in reopened.entries("flows")] == ["20260728T1201"]

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            SummaryStore(tmp_path / "nope", create=False)

    def test_auto_part_naming(self, tmp_path):
        store = SummaryStore(tmp_path)
        bundle = make_bundle((0, 50))
        first = store.write("flows", "20260728T1201", bundle)
        second = store.write("flows", "20260728T1201", make_bundle((50, 100)))
        assert (first.part, second.part) == ("part-0000", "part-0001")

    def test_overwrite_guard(self, tmp_path):
        store = SummaryStore(tmp_path)
        bundle = make_bundle((0, 50))
        store.write("flows", "20260728T1201", bundle, part="p")
        with pytest.raises(FileExistsError, match="overwrite"):
            store.write("flows", "20260728T1201", bundle, part="p")
        replaced = store.write(
            "flows", "20260728T1201", make_bundle((50, 80)), part="p",
            overwrite=True,
        )
        assert len(store.entries("flows")) == 1
        assert store.load(replaced).assignments == ["h1", "h2"]

    @pytest.mark.parametrize("bad", ["", "a/b", "../up", ".hidden", "-x"])
    def test_invalid_names_rejected(self, tmp_path, bad):
        store = SummaryStore(tmp_path)
        with pytest.raises(ValueError, match="invalid"):
            store.write(bad, "20260728", make_bundle((0, 10)))

    def test_unsupported_artifact_type(self, tmp_path):
        store = SummaryStore(tmp_path)
        with pytest.raises(CodecError, match="store holds"):
            store.write("flows", "20260728", object())

    def test_stored_summary_artifact(self, tmp_path):
        store = SummaryStore(tmp_path)
        summary = make_bundle((0, 200)).summary()
        entry = store.write("reports", "20260728", summary)
        assert entry.kind == "summary"
        assert store.load(entry).equals(summary)

    def test_corrupt_file_caught_on_load(self, tmp_path):
        store = SummaryStore(tmp_path)
        entry = store.write("flows", "20260728", make_bundle((0, 50)))
        path = tmp_path / entry.path
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CodecError, match="checksum"):
            store.load(entry)

    def test_manifest_version_refused(self, tmp_path):
        SummaryStore(tmp_path)
        manifest = tmp_path / SummaryStore.MANIFEST
        manifest.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(CodecError, match="manifest version"):
            SummaryStore(tmp_path)

    def test_no_stray_staging_files(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728", make_bundle((0, 50)))
        strays = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert strays == []

    def test_overwrite_stages_a_new_revision(self, tmp_path):
        # An overwrite must never replace the referenced file in place: the
        # manifest points at an intact blob on either side of the swap.
        store = SummaryStore(tmp_path)
        first = store.write("flows", "20260728", make_bundle((0, 50)),
                            part="p")
        second = store.write("flows", "20260728", make_bundle((50, 80)),
                             part="p", overwrite=True)
        third = store.write("flows", "20260728", make_bundle((80, 90)),
                            part="p", overwrite=True)
        assert first.path != second.path != third.path
        assert not (tmp_path / first.path).exists()  # retired after swap
        assert not (tmp_path / second.path).exists()
        assert (tmp_path / third.path).exists()
        assert len(store.entries("flows")) == 1

    def test_concurrent_handles_do_not_lose_entries(self, tmp_path):
        # Two long-lived handles on one root: each write re-reads the
        # manifest under the mutation lock, so neither clobbers the other.
        writer_a = SummaryStore(tmp_path)
        writer_b = SummaryStore(tmp_path)
        entry_a = writer_a.write("flows", "20260728T1201",
                                 make_bundle((0, 50)))
        entry_b = writer_b.write("flows", "20260728T1201",
                                 make_bundle((50, 100), seed=1))
        assert entry_a.part != entry_b.part
        merged = SummaryStore(tmp_path, create=False)
        assert len(merged.entries("flows")) == 2

    def test_live_lock_times_out_naming_the_holder(self, tmp_path):
        import os

        from repro.store.store import _StoreLock

        lock = tmp_path / ".store.lock"
        lock.write_text(str(os.getpid()))  # a holder that is clearly alive
        with pytest.raises(TimeoutError, match="held by running process"):
            with _StoreLock(lock, timeout=0.2):
                pass
        assert lock.exists()  # a live holder's lock is never stolen

    def test_dead_holder_lock_is_reclaimed(self, tmp_path):
        import multiprocessing as mp

        from repro.store.store import _StoreLock

        proc = mp.get_context("spawn").Process(target=int, args=("0",))
        proc.start()
        proc.join()  # a PID that definitely no longer runs
        lock = tmp_path / ".store.lock"
        lock.write_text(str(proc.pid))
        with _StoreLock(lock, timeout=0.2):
            pass  # acquired without waiting out the timeout
        assert not lock.exists()  # released, stale copy cleaned up

    def test_namespaces_and_ls(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("a", "20260728", make_bundle((0, 10)))
        store.write("b", "20260728", make_bundle((10, 20)))
        assert store.namespaces() == ["a", "b"]
        listing = store.ls()
        assert "NAMESPACE" in listing and "h1,h2" in listing
        assert "(no artifacts" in store.ls("missing")
        assert "(empty store" in SummaryStore(tmp_path / "fresh").ls()


class TestMergedServing:
    def test_summary_matches_in_memory_merge(self, tmp_path):
        store = SummaryStore(tmp_path)
        parts = [make_bundle((0, 300)), make_bundle((300, 600), seed=1)]
        store.write("flows", "20260728T1201", parts[0])
        store.write("flows", "20260728T1202", parts[1])
        expected = parts[0].merge(parts[1]).summary()
        assert store.summary("flows").equals(expected)

    def test_bucket_filter(self, tmp_path):
        store = SummaryStore(tmp_path)
        first = make_bundle((0, 300))
        store.write("flows", "20260728T1201", first)
        store.write("flows", "20260728T1202", make_bundle((300, 600), seed=1))
        only_first = store.summary("flows", buckets=["20260728T1201"])
        assert only_first.equals(first.summary())

    def test_empty_namespace_raises(self, tmp_path):
        store = SummaryStore(tmp_path)
        with pytest.raises(KeyError, match="no sketch bundles"):
            store.summary("ghost")

    def test_incompatible_bundles_refuse_to_merge(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T1201", make_bundle((0, 100)))
        store.write(
            "flows", "20260728T1202", make_bundle((100, 200), salt=SALT + 1)
        )
        with pytest.raises(ValueError, match="incompatible"):
            store.summary("flows")

    def test_overlapping_keys_refuse_to_merge(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T1201", make_bundle((0, 100)))
        store.write("flows", "20260728T1202", make_bundle((0, 100), seed=9))
        with pytest.raises(ValueError, match="key-disjoint"):
            store.summary("flows")


class TestCompaction:
    def fill(self, store: SummaryStore) -> list[SketchBundle]:
        buckets = [
            "20260728T1201", "20260728T1202", "20260728T1259",
            "20260728T1300", "20260729T0001",
        ]
        bundles = []
        for index, bucket in enumerate(buckets):
            bundle = make_bundle(
                (index * 1000, index * 1000 + 400), seed=index
            )
            store.write("flows", bucket, bundle)
            bundles.append(bundle)
        return bundles

    def test_rollup_to_hour_preserves_estimates(self, tmp_path):
        store = SummaryStore(tmp_path)
        bundles = self.fill(store)
        specs = [
            AggregationSpec("max", ("h1", "h2")),
            AggregationSpec("min", ("h1", "h2")),
            AggregationSpec("l1", ("h1", "h2")),
            AggregationSpec("single", ("h1",)),
        ]
        in_memory = QueryEngine(bundles[0].merge(*bundles[1:]).summary())
        raw = QueryEngine.from_store(store, "flows")
        written = store.compact("flows", to="hour")
        compacted = QueryEngine.from_store(store, "flows")
        for spec in specs:
            expected = in_memory.estimate(spec)
            assert raw.estimate(spec) == expected
            assert compacted.estimate(spec) == expected
        buckets = sorted(e.bucket for e in store.entries("flows"))
        assert buckets == ["20260728T12", "20260728T13", "20260729T00"]
        assert {e.part for e in written} == {"rollup-0000"}

    def test_rollup_to_day(self, tmp_path):
        store = SummaryStore(tmp_path)
        bundles = self.fill(store)
        store.compact("flows", to="hour")
        store.compact("flows", to="day")
        assert sorted(e.bucket for e in store.entries("flows")) == [
            "20260728", "20260729",
        ]
        expected = bundles[0].merge(*bundles[1:]).summary()
        assert store.summary("flows").equals(expected)

    def test_old_files_removed(self, tmp_path):
        store = SummaryStore(tmp_path)
        self.fill(store)
        store.compact("flows", to="day")
        on_disk = sorted(p.name for p in tmp_path.rglob("*.cws"))
        manifest_files = sorted(
            p.split("/")[-1] for p in
            (e.path for e in store.entries())
        )
        assert on_disk == manifest_files

    def test_single_entry_at_target_untouched(self, tmp_path):
        store = SummaryStore(tmp_path)
        entry = store.write("flows", "20260728T12", make_bundle((0, 100)))
        assert store.compact("flows", to="hour") == []
        assert store.entries("flows") == [entry]

    def test_multiple_parts_in_one_bucket_collapse(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T12", make_bundle((0, 100)))
        store.write("flows", "20260728T12", make_bundle((100, 200), seed=1))
        written = store.compact("flows", to="hour")
        assert len(written) == 1
        assert len(store.entries("flows")) == 1

    def test_checkpoints_not_compacted(self, tmp_path):
        engine = ShardedSummarizer(
            k=4, assignments=["h1"], hasher=KeyHasher(SALT)
        )
        engine.ingest("h1", np.arange(10), np.ones(10))
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T1201", engine.checkpoint_state())
        store.write("flows", "20260728T1201", make_bundle((0, 50)))
        store.write("flows", "20260728T1202", make_bundle((50, 90), seed=1))
        store.compact("flows", to="hour")
        kinds = sorted(e.kind for e in store.entries("flows"))
        assert kinds == ["bottomk", "checkpoint"]

    def test_unknown_granularity(self, tmp_path):
        with pytest.raises(ValueError, match="granularity"):
            SummaryStore(tmp_path).compact("flows", to="fortnight")

    def test_coarser_entries_ignored(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728", make_bundle((0, 100)))
        assert store.compact("flows", to="hour") == []


class TestFromStore:
    def test_from_store_with_dataset_binding(self, tmp_path):
        # Stream summaries carry raw key identifiers; from_store must keep
        # serving key_in predicates without any dataset attached.
        from repro.core.predicates import key_in

        sampler_keys = [f"key{i}" for i in range(60)]
        sketches = {}
        for name, scale in [("h1", 1.0), ("h2", 2.0)]:
            sampler = BottomKStreamSampler(20, IppsRanks(), KeyHasher(SALT))
            sampler.process_stream(
                (key, (i % 7 + 1) * scale)
                for i, key in enumerate(sampler_keys)
            )
            sketches[name] = sampler.sketch()
        bundle = SketchBundle(
            "bottomk", sketches, IppsRanks(), hasher_salt=SALT
        )
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728", bundle)
        engine = QueryEngine.from_store(store, "flows")
        spec = AggregationSpec("max", ("h1", "h2"))
        subset = engine.estimate(
            spec, predicate=key_in(sampler_keys[:30])
        )
        total = engine.estimate(spec)
        assert 0.0 <= subset <= total


class TestBucketBounds:
    def test_spans(self):
        from datetime import timedelta

        from repro.store import bucket_bounds

        for bucket, span in [
            ("20260728T1201", timedelta(minutes=1)),
            ("20260728T12", timedelta(hours=1)),
            ("20260728", timedelta(days=1)),
        ]:
            lo, hi = bucket_bounds(bucket)
            assert hi - lo == span
            assert lo.tzinfo == timezone.utc

    def test_minute_nested_in_its_hour_and_day(self):
        from repro.store import bucket_bounds

        minute = bucket_bounds("20260728T1201")
        hour = bucket_bounds("20260728T12")
        day = bucket_bounds("20260728")
        assert hour[0] <= minute[0] and minute[1] <= hour[1]
        assert day[0] <= hour[0] and hour[1] <= day[1]

    def test_invalid_bucket_rejected(self):
        from repro.store import bucket_bounds

        with pytest.raises(ValueError, match="invalid bucket id"):
            bucket_bounds("not-a-bucket")


class TestVersionWatch:
    def test_version_moves_on_every_mutation(self, tmp_path):
        store = SummaryStore(tmp_path)
        seen = {store.version()}
        entry = store.write("flows", "20260728T1201", make_bundle((0, 50)))
        seen.add(store.version())
        store.write("flows", "20260728T1202", make_bundle((50, 100), seed=1))
        seen.add(store.version())
        store.compact("flows", to="hour")
        seen.add(store.version())
        assert len(seen) == 4  # all distinct: each mutation is observable

    def test_version_is_per_namespace(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1201", make_bundle((0, 50)))
        before = store.version("web")
        store.write("api", "20260728T1201", make_bundle((50, 100), seed=1))
        assert store.version("web") == before  # other namespaces invisible
        assert store.version("api") != before

    def test_version_stable_across_reopen(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1201", make_bundle((0, 50)))
        assert SummaryStore(tmp_path).version("web") == store.version("web")


class TestRemove:
    def test_remove_drops_entry_and_file(self, tmp_path):
        store = SummaryStore(tmp_path)
        entry = store.write("flows", "20260728T1201", make_bundle((0, 50)))
        assert (tmp_path / entry.path).exists()
        removed = store.remove("flows", "20260728T1201", entry.part)
        assert removed == entry
        assert store.entries("flows") == []
        assert not (tmp_path / entry.path).exists()
        assert SummaryStore(tmp_path).entries("flows") == []

    def test_remove_missing(self, tmp_path):
        store = SummaryStore(tmp_path)
        with pytest.raises(KeyError, match="no artifact"):
            store.remove("flows", "20260728T1201", "part-0000")
        assert store.remove(
            "flows", "20260728T1201", "part-0000", missing_ok=True
        ) is None


class TestPrune:
    def test_prune_removes_only_unreferenced_files(self, tmp_path):
        store = SummaryStore(tmp_path)
        entry = store.write("flows", "20260728T1201", make_bundle((0, 50)))
        blob_dir = (tmp_path / entry.path).parent
        # Simulate the crash windows prune exists for: a retired revision
        # whose unlink never ran, and a staging file a killed writer left.
        orphan = blob_dir / "part-0000.r1.cws"
        orphan.write_bytes(b"retired revision")
        staging = blob_dir / ".part-0001.cws.tmp.12345"
        staging.write_bytes(b"staged then killed")
        stale_manifest = tmp_path / ".manifest.json.tmp.999"
        stale_manifest.write_bytes(b"{}")
        removed = store.prune()
        assert sorted(removed) == sorted([
            ".manifest.json.tmp.999",
            f"data/flows/20260728T1201/{orphan.name}",
            f"data/flows/20260728T1201/{staging.name}",
        ])
        assert not orphan.exists() and not staging.exists()
        assert not stale_manifest.exists()
        assert (tmp_path / entry.path).exists()  # live artifact untouched
        assert store.load(entry) is not None

    def test_prune_drops_empty_bucket_directories(self, tmp_path):
        store = SummaryStore(tmp_path)
        entry = store.write("flows", "20260728T1201", make_bundle((0, 50)))
        store.remove("flows", "20260728T1201", entry.part)
        # remove() already unlinked the blob; only the empty dirs remain.
        assert (tmp_path / entry.path).parent.exists()
        assert store.prune() == []
        assert not (tmp_path / entry.path).parent.exists()

    def test_prune_empty_store(self, tmp_path):
        assert SummaryStore(tmp_path).prune() == []

    def test_staged_but_retired_compaction_files_removed(self, tmp_path):
        # A compaction whose manifest rewrite never happened: the rollup
        # blob exists on disk but no entry references it.
        store = SummaryStore(tmp_path)
        store.write("flows", "20260728T1201", make_bundle((0, 50)))
        ghost = tmp_path / "data" / "flows" / "20260728T12" / "rollup-0000.cws"
        ghost.parent.mkdir(parents=True)
        ghost.write_bytes(b"staged rollup, manifest never swapped")
        removed = store.prune()
        assert removed == ["data/flows/20260728T12/rollup-0000.cws"]
        assert not ghost.exists()


class TestLsJson:
    def test_shared_machine_readable_format(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1201", make_bundle((0, 50)))
        store.write("web", "20260728T1202", make_bundle((50, 100), seed=1))
        store.write("api", "20260728", make_bundle((100, 150), seed=2))
        listing = store.ls_json()
        assert listing["root"] == str(tmp_path)
        assert listing["version"] == store.version()
        by_name = {row["namespace"]: row for row in listing["namespaces"]}
        assert set(by_name) == {"web", "api"}
        web = by_name["web"]
        assert web["version"] == store.version("web")
        assert web["buckets"] == ["20260728T1201", "20260728T1202"]
        assert web["nbytes"] == sum(
            entry.nbytes for entry in store.entries("web")
        )
        assert [row["granularity"] for row in web["entries"]] == [
            "minute", "minute",
        ]
        # round-trips through JSON (the CLI prints exactly this)
        assert json.loads(json.dumps(listing)) == listing

    def test_namespace_filter(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1201", make_bundle((0, 50)))
        store.write("api", "20260728T1201", make_bundle((50, 100), seed=1))
        listing = store.ls_json("api")
        assert [row["namespace"] for row in listing["namespaces"]] == ["api"]


class TestBundleEntries:
    def fill(self, store):
        store.write("web", "20260728T1259", make_bundle((0, 50)))
        store.write("web", "20260728T1301", make_bundle((50, 100), seed=1))
        store.write("web", "20260729", make_bundle((100, 150), seed=2))

    def test_window_selection_spans_granularities(self, tmp_path):
        store = SummaryStore(tmp_path)
        self.fill(store)
        buckets = lambda rows: [entry.bucket for entry in rows]  # noqa: E731
        assert buckets(store.bundle_entries("web")) == [
            "20260728T1259", "20260728T1301", "20260729",
        ]
        assert buckets(
            store.bundle_entries("web", since="20260728T13")
        ) == ["20260728T1301", "20260729"]
        assert buckets(
            store.bundle_entries("web", until="20260728T1259")
        ) == ["20260728T1259"]
        assert buckets(
            store.bundle_entries(
                "web", since="20260728T1301", until="20260728T1301"
            )
        ) == ["20260728T1301"]
        # a day window catches everything inside the day
        assert buckets(
            store.bundle_entries("web", since="20260728", until="20260728")
        ) == ["20260728T1259", "20260728T1301"]

    def test_selection_stable_across_compaction(self, tmp_path):
        store = SummaryStore(tmp_path)
        self.fill(store)
        before = {
            entry.bucket
            for entry in store.bundle_entries("web", until="20260728T12")
        }
        store.compact("web", to="hour")
        after = {
            entry.bucket
            for entry in store.bundle_entries("web", until="20260728T12")
        }
        assert before == {"20260728T1259"} and after == {"20260728T12"}

    def test_buckets_and_window_are_exclusive(self, tmp_path):
        store = SummaryStore(tmp_path)
        with pytest.raises(ValueError, match="either buckets or"):
            store.bundle_entries(
                "web", buckets=["20260728"], since="20260728"
            )

    def test_checkpoints_never_selected(self, tmp_path):
        store = SummaryStore(tmp_path)
        engine = ShardedSummarizer(
            k=4, assignments=ASSIGNMENTS, hasher=KeyHasher(SALT)
        )
        engine.ingest("h1", np.arange(5), np.ones(5))
        store.write("web", "20260728T1201", engine.checkpoint_state())
        assert store.bundle_entries("web") == []
