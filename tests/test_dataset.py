"""Tests for WeightedSet and MultiAssignmentDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import MultiAssignmentDataset, WeightedSet


class TestWeightedSet:
    def test_basic_accessors(self):
        ws = WeightedSet(["a", "b", "c"], [1.0, 2.0, 3.0])
        assert len(ws) == 3
        assert ws.total == 6.0
        assert ws["b"] == 2.0
        assert "a" in ws and "z" not in ws

    def test_iteration_pairs(self):
        ws = WeightedSet(["a", "b"], [1.0, 2.0])
        assert list(ws) == [("a", 1.0), ("b", 2.0)]

    def test_subset_weight_ignores_missing(self):
        ws = WeightedSet(["a", "b"], [1.0, 2.0])
        assert ws.subset_weight(["a", "nope"]) == 1.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            WeightedSet(["a"], [1.0, 2.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightedSet(["a"], [-1.0])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError, match="distinct"):
            WeightedSet(["a", "a"], [1.0, 2.0])

    def test_repr(self):
        assert "n=2" in repr(WeightedSet(["a", "b"], [1.0, 2.0]))


class TestMultiAssignmentDataset:
    def make(self):
        return MultiAssignmentDataset(
            keys=["a", "b", "c"],
            assignments=["x", "y"],
            weights=[[1.0, 0.0], [2.0, 3.0], [0.0, 4.0]],
            attributes={"color": ["red", "blue", "red"]},
        )

    def test_shapes_and_totals(self):
        ds = self.make()
        assert ds.n_keys == 3
        assert ds.n_assignments == 2
        assert ds.total("x") == 3.0
        assert ds.total("y") == 7.0

    def test_support_size_counts_positive(self):
        ds = self.make()
        assert ds.support_size("x") == 2
        assert ds.support_size("y") == 2

    def test_weight_and_vector(self):
        ds = self.make()
        assert ds.weight("b", "y") == 3.0
        np.testing.assert_array_equal(ds.weight_vector("c"), [0.0, 4.0])

    def test_positions(self):
        ds = self.make()
        assert ds.key_position("b") == 1
        assert ds.assignment_position("y") == 1
        assert ds.assignment_positions(["y", "x"]) == [1, 0]
        assert ds.assignment_positions(None) == [0, 1]

    def test_weighted_set_drops_zero_weights(self):
        ds = self.make()
        ws = ds.weighted_set("x")
        assert set(ws.keys) == {"a", "b"}
        assert ws.total == 3.0

    def test_restrict_keeps_attributes(self):
        ds = self.make()
        sub = ds.restrict(["y"])
        assert sub.assignments == ["y"]
        assert sub.attribute("color") == ["red", "blue", "red"]
        assert sub.total("y") == 7.0

    def test_attribute_lookup(self):
        assert self.make().attribute("color")[0] == "red"

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            MultiAssignmentDataset(["a"], ["x", "y"], [[1.0]])

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(ValueError, match="non-negative"):
            MultiAssignmentDataset(["a"], ["x"], [[-1.0]])
        with pytest.raises(ValueError, match="finite"):
            MultiAssignmentDataset(["a"], ["x"], [[np.inf]])

    def test_rejects_duplicate_keys_and_assignments(self):
        with pytest.raises(ValueError, match="keys must be distinct"):
            MultiAssignmentDataset(["a", "a"], ["x"], [[1.0], [2.0]])
        with pytest.raises(ValueError, match="assignment names"):
            MultiAssignmentDataset(["a"], ["x", "x"], [[1.0, 2.0]])

    def test_rejects_attribute_length_mismatch(self):
        with pytest.raises(ValueError, match="attribute"):
            MultiAssignmentDataset(
                ["a", "b"], ["x"], [[1.0], [2.0]], attributes={"c": ["only-one"]}
            )

    def test_from_records_fills_missing_with_zero(self):
        ds = MultiAssignmentDataset.from_records(
            {"a": {"x": 1.0}, "b": {"x": 2.0, "y": 3.0}}
        )
        assert ds.weight("a", "y") == 0.0
        assert ds.weight("b", "y") == 3.0

    def test_from_records_explicit_assignment_order(self):
        ds = MultiAssignmentDataset.from_records(
            {"a": {"x": 1.0, "y": 2.0}}, assignments=["y", "x"]
        )
        assert ds.assignments == ["y", "x"]
        np.testing.assert_array_equal(ds.weights, [[2.0, 1.0]])

    def test_from_weighted_sets_collates_union(self):
        ds = MultiAssignmentDataset.from_weighted_sets(
            {
                "p1": WeightedSet(["a", "b"], [1.0, 2.0]),
                "p2": WeightedSet(["b", "c"], [5.0, 7.0]),
            }
        )
        assert set(ds.keys) == {"a", "b", "c"}
        assert ds.weight("a", "p2") == 0.0
        assert ds.weight("b", "p1") == 2.0
        assert ds.weight("c", "p2") == 7.0

    def test_column_is_aligned(self):
        ds = self.make()
        np.testing.assert_array_equal(ds.column("y"), [0.0, 3.0, 4.0])
