"""Durable runtime tier: revisions, persistent cache, migration, concurrency.

Pins the PR-6 guarantees end to end:

* revision-derived version fingerprints move exactly when the manifest
  does (and the *bundle* fingerprint only when query-servable entries
  change);
* the persistent query-result cache survives store reopens, counts hits,
  and evicts coldest-first;
* a legacy ``manifest.json`` store migrates into the runtime tier
  losslessly and idempotently on first open;
* two ``SummaryStore`` writer *processes* interleaving write / remove /
  compact against one root never lose a manifest entry — SQLite
  transactions replace the old cross-process lock file;
* a restarted service (fresh manager + planner over the same root after
  a clean checkpoint) answers a previously served query straight from
  the persistent cache, bit-identically, with the hit count moving;
* ``ServiceClient.wait_ready`` retries connection-level failures only —
  an HTTP-level error from a live server re-raises immediately.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import time
from datetime import datetime, timezone
from http.server import BaseHTTPRequestHandler, HTTPServer

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.engine.sharded import ShardedSummarizer
from repro.ranks.hashing import KeyHasher
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import NamespaceConfig
from repro.service.planner import QueryPlanner
from repro.service.windows import LiveWindowManager
from repro.store import (
    RUNTIME_FILENAME,
    CodecError,
    RuntimeStore,
    SummaryStore,
)

SALT = 13
ASSIGNMENTS = ["h1", "h2"]
T0 = datetime(2026, 7, 28, 12, 0, 30, tzinfo=timezone.utc).timestamp()
NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=9)


def make_bundle(key_range, seed=0, k=8, salt=SALT):
    """Small bundle over a dedicated key range (disjoint ranges merge)."""
    rng = np.random.default_rng(seed)
    engine = ShardedSummarizer(
        k=k, assignments=ASSIGNMENTS, n_shards=2, hasher=KeyHasher(salt)
    )
    keys = np.arange(*key_range)
    for name in ASSIGNMENTS:
        engine.ingest(name, keys, rng.pareto(1.3, len(keys)) + 0.05)
    return engine.sketch_bundle()


# -- runtime tier unit behavior ------------------------------------------------


class TestRuntimeStore:
    def test_revisions_move_per_mutation(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        assert runtime.manifest_snapshot()["global_rev"] == 0
        runtime.record_mutation("a", bundles_changed=True)
        runtime.record_mutation("a", bundles_changed=False)
        runtime.record_mutation("b", bundles_changed=True)
        snapshot = runtime.manifest_snapshot()
        assert snapshot["global_rev"] == 3
        assert snapshot["revisions"]["a"] == (2, 1)  # one bundle change
        assert snapshot["revisions"]["b"] == (1, 1)

    def test_counters_accumulate(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        runtime.add_counter("rotations", 2)
        runtime.add_counter("rotations", 3)
        runtime.record_ingest("web", events=10)
        runtime.record_ingest("web", events=4)
        counters = runtime.counters()
        assert counters["rotations"] == 5
        assert counters["ingest_batches"] == 2
        assert counters["ingested_events"] == 14
        assert runtime.live_seqs("web") == (0, 2, 0)

    def test_cache_hit_counts_and_persistence(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        payload = {"estimate": 1.25, "version": "r3"}
        assert runtime.cache_get("q1") is None
        runtime.cache_put("q1", "web", "r3", payload)
        assert runtime.cache_get("q1") == payload
        assert runtime.cache_get("q1") == payload
        runtime.close()
        # A fresh handle on the same root sees the entry AND its history.
        reopened = RuntimeStore(tmp_path)
        assert reopened.cache_get("q1") == payload
        assert reopened.cache_stats() == {"entries": 1, "hits": 3}
        assert reopened.counters()["cache_hits"] == 3
        assert reopened.counters()["cache_misses"] == 1

    def test_cache_evicts_coldest_first(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        for name in ("cold", "warm", "hot"):
            runtime.cache_put(name, "web", "r1", {"q": name}, max_entries=3)
        runtime.cache_get("hot")
        runtime.cache_get("hot")
        runtime.cache_get("warm")
        runtime.cache_put("new", "web", "r1", {"q": "new"}, max_entries=3)
        assert runtime.cache_get("cold") is None  # zero hits: evicted
        assert runtime.cache_get("hot") == {"q": "hot"}
        assert runtime.cache_get("warm") == {"q": "warm"}

    def test_numpy_scalars_coerce_losslessly(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        value = np.float64(0.1) + np.float64(0.2)  # not representable tidily
        runtime.cache_put("q", "web", "r1", {"estimate": value, "n": np.int64(7)})
        cached = runtime.cache_get("q")
        assert cached["estimate"] == float(value)  # bit-identical round-trip
        assert cached["n"] == 7

    def test_unsupported_schema_version_refused(self, tmp_path):
        runtime = RuntimeStore(tmp_path)
        runtime.set_meta("schema_version", "99")
        runtime.close()
        with pytest.raises(ValueError, match="schema version 99"):
            RuntimeStore(tmp_path)


class TestVersionTokens:
    def test_version_derives_from_revisions(self, tmp_path):
        store = SummaryStore(tmp_path)
        before = store.version()
        store.write("web", "20260728T1200", make_bundle((0, 40)))
        after_write = store.version()
        assert after_write != before
        assert store.version("web").startswith("web.")
        # O(1) tokens: repeated reads with no mutation are stable.
        assert store.version() == after_write

    def test_bundle_version_ignores_checkpoints(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1200", make_bundle((0, 40)))
        bundle_before = store.bundle_version("web")
        version_before = store.version("web")
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi(["k1"], {"h1": [1.0], "h2": [2.0]})
        store.write(
            "web", "20260728T1201", summarizer.checkpoint_state(),
            part="live-window",
        )
        # The namespace revision moved; the query-servable fingerprint
        # did not — which is what keeps cached answers valid across a
        # shutdown-checkpoint -> restart cycle.
        assert store.version("web") != version_before
        assert store.bundle_version("web") == bundle_before


# -- legacy manifest migration -------------------------------------------------


def demote_to_legacy(root) -> int:
    """Rewrite a runtime-tier store as a legacy ``manifest.json`` store."""
    store = SummaryStore(root, create=False)
    rows = [entry.to_json() for entry in store.entries()]
    store.runtime.close()
    (root / SummaryStore.MANIFEST).write_text(
        json.dumps({"version": 1, "entries": rows})
    )
    for suffix in ("", "-wal", "-shm"):
        path = root / f"{RUNTIME_FILENAME}{suffix}"
        if path.exists():
            path.unlink()
    return len(rows)


class TestMigration:
    def test_round_trip_is_lossless(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1200", make_bundle((0, 40), seed=1))
        store.write("web", "20260728T1201", make_bundle((40, 80), seed=2))
        store.write("dns", "20260728T12", make_bundle((80, 120), seed=3))
        expected = [entry.to_json() for entry in store.entries()]
        blobs = {
            entry.path: (tmp_path / entry.path).read_bytes()
            for entry in store.entries()
        }
        count = demote_to_legacy(tmp_path)

        migrated = SummaryStore(tmp_path)
        assert [entry.to_json() for entry in migrated.entries()] == expected
        for entry in migrated.entries():
            assert (tmp_path / entry.path).read_bytes() == blobs[entry.path]
        assert not (tmp_path / SummaryStore.MANIFEST).exists()
        assert (tmp_path / f"{SummaryStore.MANIFEST}.migrated").exists()
        assert migrated.runtime.stats()["migrated_legacy_entries"] == count

    def test_migration_is_idempotent(self, tmp_path):
        store = SummaryStore(tmp_path)
        store.write("web", "20260728T1200", make_bundle((0, 40)))
        expected = [entry.to_json() for entry in store.entries()]
        demote_to_legacy(tmp_path)
        SummaryStore(tmp_path)  # migrates
        again = SummaryStore(tmp_path)  # no legacy manifest left: no-op
        assert [entry.to_json() for entry in again.entries()] == expected

    def test_unknown_legacy_version_refused(self, tmp_path):
        (tmp_path / SummaryStore.MANIFEST).write_text(
            json.dumps({"version": 2, "entries": []})
        )
        with pytest.raises(CodecError, match="manifest version 2"):
            SummaryStore(tmp_path)


# -- cross-process concurrency -------------------------------------------------

BUCKET = "20260728T1200"
HOUR_BUCKET = "20260728T12"


def _slot_writer(root, lo: int, n: int) -> None:
    """Write ``n`` bundles into one shared (namespace, bucket) slot."""
    store = SummaryStore(root)
    for i in range(n):
        start = lo + i * 10
        store.write("web", BUCKET, make_bundle((start, start + 10), seed=start))


def _mixed_writer(root, namespace: str, base_seed: int) -> None:
    """Interleave write / remove / compact inside one namespace."""
    store = SummaryStore(root)
    parts = []
    for i in range(4):
        start = base_seed + i * 10
        entry = store.write(
            namespace, f"20260728T120{i}",
            make_bundle((start, start + 10), seed=start),
        )
        parts.append(entry)
    store.remove(namespace, parts[3].bucket, parts[3].part)
    store.compact(namespace, to="hour")


class TestCrossProcess:
    def spawn(self, target, *args_list):
        context = multiprocessing.get_context("spawn")
        workers = [
            context.Process(target=target, args=args) for args in args_list
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

    def test_concurrent_writers_lose_no_entries(self, tmp_path):
        n = 8
        self.spawn(_slot_writer, (tmp_path, 0, n), (tmp_path, 1000, n))
        store = SummaryStore(tmp_path, create=False)
        listing = store.entries("web", buckets=[BUCKET])
        # Every write from both processes landed: transactional part
        # allocation never hands two writers the same slot.
        assert len(listing) == 2 * n
        assert len({entry.part for entry in listing}) == 2 * n
        for entry in listing:
            assert (tmp_path / entry.path).exists()
            store.load(entry)  # decodes cleanly
        assert store.runtime.manifest_snapshot()["global_rev"] == 2 * n

    def test_concurrent_mixed_mutations_stay_exact(self, tmp_path):
        self.spawn(
            _mixed_writer, (tmp_path, "web", 0), (tmp_path, "dns", 5000)
        )
        store = SummaryStore(tmp_path, create=False)
        for namespace, base_seed in (("web", 0), ("dns", 5000)):
            listing = store.entries(namespace)
            assert [e.bucket for e in listing] == [HOUR_BUCKET]
            # The rolled-up artifact equals the in-memory merge of the
            # three bundles the writer kept (the fourth was removed).
            kept = [
                make_bundle((start, start + 10), seed=start)
                for start in (base_seed, base_seed + 10, base_seed + 20)
            ]
            expected = QueryEngine.from_bundles(kept)
            actual = QueryEngine.from_bundles([store.load(listing[0])])
            spec = AggregationSpec("max", tuple(ASSIGNMENTS))
            assert actual.estimate(spec) == expected.estimate(spec)


# -- restart serves from the persistent cache ---------------------------------


def service_stack(root):
    store = SummaryStore(root)
    manager = LiveWindowManager(store, [NS], clock=lambda: T0)
    return store, manager, QueryPlanner(manager)


def ingest_batch(manager, lo: int = 0, n: int = 20) -> None:
    keys = [f"k{i}" for i in range(lo, lo + n)]
    w1 = np.linspace(1.0, 3.0, n)
    manager.ingest("web", keys, {"h1": w1, "h2": w1 * 2.0})


class TestRestartCache:
    def test_clean_restart_hits_persistent_cache(self, tmp_path):
        store, manager, planner = service_stack(tmp_path)
        ingest_batch(manager)
        first = planner.estimate("web", "max", ASSIGNMENTS)
        assert first["cached"] is False
        repeat = planner.estimate("web", "max", ASSIGNMENTS)
        assert repeat["cached"] is True
        assert repeat["estimate"] == first["estimate"]
        manager.checkpoint()  # clean shutdown
        hits_before = store.runtime.cache_stats()["hits"]
        store.runtime.close()

        store2, _manager2, planner2 = service_stack(tmp_path)
        served = planner2.estimate("web", "max", ASSIGNMENTS)
        # Same version token across the restart -> the stored answer is
        # served as-is: bit-identical, no engine build, hit count moving.
        assert served["cached"] is True
        assert served["estimate"] == first["estimate"]
        assert served["version"] == first["version"]
        assert store2.runtime.cache_stats()["hits"] == hits_before + 1
        assert planner2.stats["engine_builds"] == 0

    def test_unclean_restart_invalidates_the_token(self, tmp_path):
        store, manager, planner = service_stack(tmp_path)
        ingest_batch(manager)
        manager.checkpoint()
        ingest_batch(manager, lo=100)  # ingested but never checkpointed
        first = planner.estimate("web", "max", ASSIGNMENTS)
        store.runtime.close()

        # "Crash": the live window's post-checkpoint events are gone.
        # The resumed state differs, so the old token must not survive.
        _store2, manager2, planner2 = service_stack(tmp_path)
        served = planner2.estimate("web", "max", ASSIGNMENTS)
        assert manager2.version("web") != first["version"]
        assert served["cached"] is False


# -- wait_ready error discipline ----------------------------------------------


class _AlwaysFailingHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        body = json.dumps({"error": "store is corrupt"}).encode()
        self.send_response(500)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # keep test output quiet
        pass


class TestWaitReady:
    def test_http_errors_reraise_immediately(self):
        server = HTTPServer(("127.0.0.1", 0), _AlwaysFailingHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient("127.0.0.1", server.server_port)
            started = time.monotonic()
            with pytest.raises(ServiceError, match="store is corrupt"):
                client.wait_ready(timeout=30.0)
            # A server answered: no silent retrying until the deadline.
            assert time.monotonic() - started < 10.0
        finally:
            server.shutdown()
            thread.join(timeout=5)

    def test_connection_failures_retry_until_deadline(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServiceClient("127.0.0.1", port, timeout=0.2)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.wait_ready(timeout=0.5)
        assert time.monotonic() - started >= 0.4
