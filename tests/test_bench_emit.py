"""The bench JSON envelope carries provenance (git SHA + repro version).

Satellite of the service PR: every ``BENCH_<name>.json`` must be
attributable to the commit and package version that produced it, so the
perf trajectory is comparable across PRs.
"""

from __future__ import annotations

import json
import pathlib
import sys

BENCHMARKS = pathlib.Path(__file__).parent.parent / "benchmarks"


def load_emit():
    sys.path.insert(0, str(BENCHMARKS))
    try:
        import emit
    finally:
        sys.path.pop(0)
    return emit


def test_bench_json_includes_provenance(tmp_path, monkeypatch):
    emit = load_emit()
    monkeypatch.setattr(emit, "RESULTS_DIR", tmp_path)
    path = emit.write_bench_json(
        "unit_test", {"events": 1}, {"ops_per_s": 2.0}
    )
    payload = json.loads(path.read_text())
    assert payload["name"] == "unit_test"
    assert set(payload) == {"name", "config", "metrics", "host", "provenance"}
    provenance = payload["provenance"]
    assert set(provenance) == {"git_sha", "repro_version"}
    import repro

    assert provenance["repro_version"] == repro.__version__
    # inside this git checkout the SHA must resolve to a real commit hash
    sha = provenance["git_sha"]
    assert sha is None or (len(sha) == 40 and all(
        ch in "0123456789abcdef" for ch in sha
    ))


def test_topology_stamp_is_opt_in(tmp_path, monkeypatch):
    emit = load_emit()
    monkeypatch.setattr(emit, "RESULTS_DIR", tmp_path)
    topology = {"workers": 2, "replication": 1, "n_slots": 16}
    path = emit.write_bench_json(
        "cluster_unit", {"events": 1}, {"ops_per_s": 2.0}, topology=topology
    )
    payload = json.loads(path.read_text())
    assert set(payload) == {
        "name", "config", "metrics", "host", "provenance", "topology",
    }
    assert payload["topology"] == topology
    # single-process benches omit the key entirely (envelope unchanged)
    path = emit.write_bench_json("solo_unit", {"events": 1}, {"s": 0.1})
    payload = json.loads(path.read_text())
    assert "topology" not in payload


def test_provenance_survives_missing_git(monkeypatch):
    emit = load_emit()
    monkeypatch.setattr(
        emit.subprocess, "run",
        lambda *args, **kwargs: (_ for _ in ()).throw(OSError("no git")),
    )
    provenance = emit._provenance()
    assert provenance["git_sha"] is None
    assert provenance["repro_version"] is not None
