"""Cluster answers are exact: N workers == one uninterrupted stream.

The acceptance property of cluster mode, driven by hypothesis over
arbitrary interleavings of the cluster lifecycle: routed multi-batch
ingestion, per-worker rotations, worker joins (with bucket handoff),
graceful leaves, and — in the replicated variant — hard worker kills
followed by self-healing **repair** (heartbeat detection, grace-window
promotion, journaled re-replication) and **heal** (the crashed worker
rejoins empty and anti-entropy rebuilds it).  After every plan, the
coordinator's merged answer must be **bit-identical** to a single
offline summarizer fed the union of all ingested events in arrival
order.

With ``replication=2`` a kill must never cost exactness: the surviving
replica holds a bit-identical copy of every lost slot, and the
coordinator must find it (``partial`` stays ``False`` throughout) —
before, during, and after the repair machinery runs.  A second kill is
only drawn once the first was repaired and three members are alive, so
every slot always keeps at least one live copy.

Keys are unique per batch (repeats only within a batch): the cluster
inherits the store's key-disjointness contract, and handed-off bucket
artifacts must never collide with later live ingests of the same keys.
"""

from __future__ import annotations

import shutil

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine, jaccard_from_summary
from repro.service import (
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
)
from repro.service.cluster import (
    CoordinatorConfig,
    CoordinatorThread,
    slot_namespace_configs,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=8, n_shards=2, salt=21)
N_SLOTS = 4
SALT = 4  # splits slots across workers (see test_cluster_service)

_weights = st.floats(
    min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def cluster_plans(draw, allow_kill: bool):
    """A cluster lifecycle: routed ingests, rotations, membership churn.

    A small state machine keeps every drawn plan executable: leaves keep
    at least one live member, at most two extra workers join, and in the
    replicated variant kills interleave with the self-healing machinery:
    ``repair`` promotes every dead worker past the grace window and
    drives the journal to quiescence, ``heal`` respawns a repaired
    worker empty and rejoins it (anti-entropy rebuilds its slots).  A
    second kill is only offered once the first was repaired and three
    members are alive, so no slot ever loses its last live copy.  Each
    ingest uses a fresh key segment (repeats only within the batch),
    honoring the key-disjointness contract across handoffs.
    """
    ops = []
    members = ["w1", "w2"]
    killed: list[str] = []   # dead, not yet promoted by a repair
    failed: list[str] = []   # promoted to failed, not yet healed or left
    n_kills = 0
    next_worker = 3
    segment = 0
    for _ in range(draw(st.integers(2, 7))):
        alive = [
            w for w in members if w not in killed and w not in failed
        ]
        choices = ["ingest", "ingest", "rotate"]
        if next_worker <= 4:
            choices.append("join")
        if len(alive) >= 2:
            choices.append("leave")
        if allow_kill and not killed and (
            (n_kills == 0 and len(alive) >= 2)
            or (n_kills == 1 and len(alive) >= 3)
        ):
            choices.append("kill")
        if killed:
            choices.extend(["repair", "repair"])  # bias toward resolving
        if failed:
            choices.append("heal")
        action = draw(st.sampled_from(choices))
        if action == "ingest":
            n = draw(st.integers(1, 10))
            ids = draw(st.lists(st.integers(0, 25), min_size=n, max_size=n))
            keys = [f"s{segment}-{key_id}" for key_id in ids]
            w1 = draw(st.lists(_weights, min_size=n, max_size=n))
            w2 = draw(st.lists(_weights, min_size=n, max_size=n))
            ops.append(("ingest", keys, w1, w2))
            segment += 1
        elif action == "rotate":
            ops.append(("rotate", draw(st.sampled_from(alive))))
        elif action == "join":
            worker = f"w{next_worker}"
            next_worker += 1
            members.append(worker)
            ops.append(("join", worker))
        elif action == "leave":
            # a graceful leave may target a live member or (in the
            # replicated variant) a dead one — the replica covers it
            candidates = [
                w for w in members
                if w in killed or w in failed or len(alive) >= 2
            ]
            worker = draw(st.sampled_from(candidates))
            members.remove(worker)
            if worker in killed:
                killed.remove(worker)
            if worker in failed:
                failed.remove(worker)
            ops.append(("leave", worker))
        elif action == "kill":
            worker = draw(st.sampled_from(alive))
            killed.append(worker)
            n_kills += 1
            ops.append(("kill", worker))
        elif action == "repair":
            failed.extend(killed)
            killed.clear()
            ops.append(("repair",))
        else:  # heal
            worker = draw(st.sampled_from(failed))
            failed.remove(worker)
            ops.append(("heal", worker))
    if not any(op[0] == "ingest" for op in ops):
        ops.append(("ingest", ["s999-0", "s999-1"], [1.0, 2.0], [3.0, 4.0]))
    return ops


class Clock:
    def __init__(self) -> None:
        self.now = 1_767_226_000.0

    def __call__(self) -> float:
        return self.now


def run_plan(root, plan, replication: int):
    clock = Clock()
    workers: dict[str, ServiceThread] = {}
    clients: dict[str, ServiceClient] = {}
    killed: set[str] = set()
    offline = NS.make_summarizer()

    def spawn(worker_id: str) -> ServiceThread:
        thread = ServiceThread(
            ServiceConfig(
                store_root=str(root / worker_id),
                namespaces=slot_namespace_configs(NS, N_SLOTS),
                port=0,
                compact_to=None,
                tick_s=3600.0,
            ),
            clock=clock,
        )
        thread.start()
        workers[worker_id] = thread
        clients[worker_id] = ServiceClient(port=thread.service.port)
        clients[worker_id].wait_ready()
        return thread

    coordinator = CoordinatorThread(
        CoordinatorConfig(
            root=str(root / "coordinator"),
            namespaces=(NS,),
            port=0,
            n_slots=N_SLOTS,
            replication=replication,
            salt=SALT,
            heartbeat_s=3600.0,  # probes driven by the repair op
            probe_timeout_s=2.0,
            fail_after_s=30.0,
            repair_interval_s=0.0,  # ticks driven by the repair op
        ),
        clock=clock,
    )
    coordinator.start()
    client = ServiceClient(port=coordinator.service.port)

    def settle(max_ticks: int = 8) -> None:
        for _ in range(max_ticks):
            tick = coordinator.service.repairs.tick()
            if not (tick["enqueued"] or tick["done"] or tick["requeued"]):
                break

    try:
        for worker_id in ("w1", "w2"):
            thread = spawn(worker_id)
            client.cluster_join(worker_id, "127.0.0.1", thread.service.port)
        for op in plan:
            if op[0] == "ingest":
                _tag, keys, w1, w2 = op
                weights = {"h1": list(w1), "h2": list(w2)}
                client.ingest("web", keys, weights, sync=True)
                offline.ingest_multi(
                    keys,
                    {k: np.asarray(v, dtype=float)
                     for k, v in weights.items()},
                )
            elif op[0] == "rotate":
                if op[1] not in killed:
                    clients[op[1]].rotate()
            elif op[0] == "join":
                thread = spawn(op[1])
                client.cluster_join(
                    op[1], "127.0.0.1", thread.service.port
                )
            elif op[0] == "leave":
                client.cluster_leave(op[1])
                if op[1] not in killed:
                    workers.pop(op[1]).stop()
                    clients.pop(op[1]).close()
            elif op[0] == "kill":
                workers[op[1]].kill()
                killed.add(op[1])
            elif op[0] == "repair":
                # heartbeat marks the corpse, the grace window elapses,
                # then the journal drains: promote + re-replicate
                coordinator.service._heartbeat_round()
                clock.now += (
                    coordinator.service.config.fail_after_s + 1.0
                )
                settle()
            elif op[0] == "heal":
                # the crashed worker comes back empty on a fresh port;
                # rejoin clears the failed flag and anti-entropy
                # rebuilds its slots from the surviving copies
                worker_id = op[1]
                clients.pop(worker_id).close()
                workers.pop(worker_id)
                shutil.rmtree(root / worker_id, ignore_errors=True)
                thread = spawn(worker_id)
                client.cluster_join(
                    worker_id, "127.0.0.1", thread.service.port
                )
                killed.discard(worker_id)
                settle()

        reference = QueryEngine(offline.summary())
        for function in ("max", "l1"):
            served = client.estimate("web", function, ("h1", "h2"))
            assert served["partial"] is False, (
                f"unexpected partial answer under plan {plan!r}: "
                f"{served.get('missing_slots')}"
            )
            assert served["estimate"] == reference.estimate(
                AggregationSpec(function, ("h1", "h2"))
            ), f"{function} diverged under plan {plan!r}"
        assert (
            client.estimate("web", "single", ("h1",))["estimate"]
            == reference.estimate(AggregationSpec("single", ("h1",)))
        )
        assert (
            client.jaccard("web", ("h1", "h2"))["estimate"]
            == jaccard_from_summary(reference.summary, ("h1", "h2"), "l")
        )
    finally:
        client.close()
        coordinator.stop()
        for worker_id, thread in workers.items():
            if worker_id not in killed:
                thread.stop()
        for c in clients.values():
            c.close()


@settings(deadline=None, max_examples=10)
@given(plan=cluster_plans(allow_kill=False))
def test_unreplicated_lifecycle_is_exact(tmp_path_factory, plan):
    """R=1, no failures: joins and leaves hand data off losslessly."""
    run_plan(tmp_path_factory.mktemp("cluster"), plan, replication=1)


@settings(deadline=None, max_examples=10)
@given(plan=cluster_plans(allow_kill=True))
def test_replicated_lifecycle_survives_kills_exactly(
    tmp_path_factory, plan
):
    """R=2: hard kills — with repair and heal interleaved anywhere in
    the plan — never cost exactness."""
    run_plan(tmp_path_factory.mktemp("cluster"), plan, replication=2)


def test_kill_repair_heal_fixed_plan(tmp_path):
    """The canonical self-healing lifecycle, pinned deterministically:
    ingest, kill a primary, ingest into the degraded cluster, repair
    (promote + re-replicate), ingest again, heal the corpse back in,
    and keep ingesting — bit-exact at the end of it all."""
    plan = [
        ("ingest", ["s0-0", "s0-1", "s0-2"],
         [1.5, 2.5, 3.5], [0.5, 4.5, 9.5]),
        ("rotate", "w1"),
        ("kill", "w2"),
        ("ingest", ["s1-0", "s1-1"], [7.0, 0.25], [2.0, 8.0]),
        ("repair",),
        ("ingest", ["s2-0", "s2-1", "s2-2"],
         [0.75, 6.0, 1.25], [3.0, 0.1, 5.0]),
        ("heal", "w2"),
        ("ingest", ["s3-0", "s3-1"], [4.0, 2.0], [1.0, 6.5]),
        ("rotate", "w2"),
    ]
    run_plan(tmp_path, plan, replication=2)
