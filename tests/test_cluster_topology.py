"""Deterministic routing: key slots, HRW assignment, slot namespaces.

Pure unit tests — no sockets.  The properties that make the cluster's
exactness story possible: every router computes the same slot for a key
(scalar == vectorized, bit-for-bit), HRW assignment is deterministic,
yields ``replication`` distinct owners, and moves only the slots whose
top-R set actually changed when membership changes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.cluster.topology import (
    ClusterTopology,
    parse_slot_namespace,
    slot_for_key,
    slot_namespace,
    slot_namespace_configs,
    slots_for_keys,
)
from repro.service.config import NamespaceConfig

WORKERS = [f"w{i}" for i in range(1, 6)]


class TestSlotHashing:
    def test_slot_is_stable_and_in_range(self):
        for key in ("user:17", 42, (3, "pair"), -9, 2**63):
            slot = slot_for_key(key, 16)
            assert 0 <= slot < 16
            assert slot == slot_for_key(key, 16)  # deterministic

    def test_salt_changes_the_partition(self):
        keys = list(range(200))
        base = [slot_for_key(k, 16, salt=0) for k in keys]
        salted = [slot_for_key(k, 16, salt=7) for k in keys]
        assert base != salted

    def test_vectorized_matches_scalar_for_numeric_keys(self):
        keys = np.arange(-500, 500, dtype=np.int64)
        vec = slots_for_keys(keys, 32)
        scalar = [slot_for_key(int(k), 32) for k in keys]
        assert vec.tolist() == scalar

    def test_vectorized_matches_scalar_for_string_and_mixed_keys(self):
        keys = ["alpha", "beta", 7, ("t", 1), "alpha2"]
        vec = slots_for_keys(keys, 8)
        assert vec.tolist() == [slot_for_key(k, 8) for k in keys]

    @settings(deadline=None, max_examples=30)
    @given(
        keys=st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=50),
        n_slots=st.integers(1, 64),
        salt=st.integers(0, 2**32),
    )
    def test_vectorized_matches_scalar_property(self, keys, n_slots, salt):
        vec = slots_for_keys(keys, n_slots, salt)
        assert vec.tolist() == [slot_for_key(k, n_slots, salt) for k in keys]

    def test_all_slots_reachable(self):
        # 4 slots over 1000 keys: every slot gets traffic (a dead slot
        # would mean part of the key space routes nowhere)
        slots = {slot_for_key(k, 4) for k in range(1000)}
        assert slots == {0, 1, 2, 3}


class TestSlotNamespaces:
    def test_round_trip(self):
        for namespace in ("web", "a--b", "x--s-ish"):
            for slot in (0, 7, 999):
                name = slot_namespace(namespace, slot)
                assert parse_slot_namespace(name) == (namespace, slot)

    def test_rejects_out_of_range_slots(self):
        with pytest.raises(ValueError):
            slot_namespace("web", -1)
        with pytest.raises(ValueError):
            slot_namespace("web", 1000)

    def test_parse_returns_none_for_plain_namespaces(self):
        for name in ("web", "web--s3", "web--sabc", "--s003", "web--s0030"):
            assert parse_slot_namespace(name) is None

    def test_config_expansion_preserves_coordination_fields(self):
        base = NamespaceConfig(
            "web", ("h1", "h2"), k=32, n_shards=2, salt=9
        )
        expanded = slot_namespace_configs(base, 4)
        assert [ns.name for ns in expanded] == [
            "web--s000", "web--s001", "web--s002", "web--s003"
        ]
        for ns in expanded:
            # everything but the name is identical: that is what makes
            # per-slot sketches exactly mergeable across workers
            assert dataclasses.replace(ns, name="web") == base

    def test_config_expansion_rejects_bad_counts(self):
        base = NamespaceConfig("web", ("h1",), k=8)
        with pytest.raises(ValueError):
            slot_namespace_configs(base, 0)


class TestHrwAssignment:
    def test_owners_are_distinct_and_bounded_by_replication(self):
        topo = ClusterTopology(n_slots=16, replication=2)
        for slot in range(16):
            owners = topo.slot_owners(slot, WORKERS)
            assert len(owners) == 2
            assert len(set(owners)) == 2
        # a cluster smaller than R yields what exists
        assert len(topo.slot_owners(0, ["only"])) == 1

    def test_assignment_is_order_and_duplicate_insensitive(self):
        topo = ClusterTopology(n_slots=32, replication=2)
        forward = topo.assignment(WORKERS)
        shuffled = topo.assignment(list(reversed(WORKERS)) + WORKERS[:2])
        assert forward == shuffled

    def test_minimal_movement_on_leave(self):
        # HRW: removing a worker only moves the slots it owned — every
        # other slot keeps its exact owner tuple.
        topo = ClusterTopology(n_slots=64, replication=2)
        before = topo.assignment(WORKERS)
        removed = WORKERS[2]
        after = topo.assignment([w for w in WORKERS if w != removed])
        for slot in range(64):
            if removed not in before[slot]:
                assert after[slot] == before[slot]

    def test_minimal_movement_on_join(self):
        topo = ClusterTopology(n_slots=64, replication=1)
        before = topo.assignment(WORKERS[:3])
        after = topo.assignment(WORKERS[:4])
        newcomer = WORKERS[3]
        for slot in range(64):
            if newcomer not in after[slot]:
                assert after[slot] == before[slot]

    def test_load_spreads_across_workers(self):
        topo = ClusterTopology(n_slots=256, replication=1)
        assignment = topo.assignment(WORKERS)
        per_worker = {w: 0 for w in WORKERS}
        for owners in assignment.values():
            per_worker[owners[0]] += 1
        # 256 slots over 5 workers ≈ 51 each; no worker starved or hot
        assert min(per_worker.values()) > 0
        assert max(per_worker.values()) < 256 // 2

    def test_salt_permutes_the_assignment(self):
        plain = ClusterTopology(n_slots=64, replication=1, salt=0)
        salted = ClusterTopology(n_slots=64, replication=1, salt=12345)
        assert plain.assignment(WORKERS) != salted.assignment(WORKERS)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(n_slots=0)
        with pytest.raises(ValueError):
            ClusterTopology(n_slots=1001)
        with pytest.raises(ValueError):
            ClusterTopology(replication=0)
        topo = ClusterTopology(n_slots=4)
        with pytest.raises(ValueError):
            topo.slot_owners(4, WORKERS)
        with pytest.raises(ValueError):
            topo.slot_owners(-1, WORKERS)

    def test_json_round_trip(self):
        topo = ClusterTopology(n_slots=8, replication=2, salt=3)
        assert ClusterTopology.from_json(topo.to_json()) == topo

    def test_topology_slot_for_key_matches_module_function(self):
        topo = ClusterTopology(n_slots=16, salt=5)
        keys = ["a", "b", 1, 2]
        assert topo.slots_for_keys(keys).tolist() == [
            slot_for_key(k, 16, 5) for k in keys
        ]
