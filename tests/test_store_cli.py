"""Tests for the store CLI (python -m repro.store)."""

from __future__ import annotations

import pytest

from repro.store.cli import build_parser, main


def write_bucket(root, bucket, assignment, prefix, seed=0, extra=()):
    argv = [
        "write", "--root", str(root), "--namespace", "web",
        "--bucket", bucket, "--assignment", assignment, "--k", "32",
        "--demo", "400", "--demo-seed", str(seed), "--demo-prefix", prefix,
        *extra,
    ]
    assert main(argv) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_write_defaults(self):
        args = build_parser().parse_args(
            ["write", "--root", "r", "--namespace", "n",
             "--bucket", "20260728", "--assignment", "h1"]
        )
        assert args.k == 256 and args.family == "ipps" and args.salt == 0

    def test_compact_granularity_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compact", "--root", "r", "--namespace", "n",
                 "--to", "century"]
            )


class TestRoundTrip:
    def test_write_ls_compact_query(self, tmp_path, capsys):
        root = tmp_path / "store"
        # Two assignments per minute bucket; per-bucket key prefixes keep
        # the buckets key-disjoint, so the rollup merge is exact.
        for bucket, prefix, seed in [
            ("20260728T1201", "a-", 0),
            ("20260728T1202", "b-", 1),
        ]:
            write_bucket(root, bucket, "h1", prefix, seed=seed)
            write_bucket(root, bucket, "h2", prefix, seed=seed + 10)
        out = capsys.readouterr().out
        assert out.count("wrote web/") == 4

        assert main(["ls", "--root", str(root)]) == 0
        listing = capsys.readouterr().out
        assert "20260728T1201" in listing and "bottomk" in listing

        assert main(["query", "--root", str(root), "--namespace", "web",
                     "--function", "max", "--assignments", "h1", "h2"]) == 0
        before = capsys.readouterr().out
        assert before.startswith("max(h1,h2) ~=")

        assert main(["compact", "--root", str(root), "--namespace", "web",
                     "--to", "hour"]) == 0
        assert "compacted ->" in capsys.readouterr().out

        assert main(["ls", "--root", str(root), "--namespace", "web"]) == 0
        assert "20260728T12 " in capsys.readouterr().out

        assert main(["query", "--root", str(root), "--namespace", "web",
                     "--function", "max", "--assignments", "h1", "h2"]) == 0
        after = capsys.readouterr().out
        assert after == before  # compaction is exact: identical estimate

    def test_csv_input(self, tmp_path, capsys):
        events = tmp_path / "events.csv"
        events.write_text(
            "key,weight\nflow-1,10.0\nflow-2,3.5\nflow-1,2.0\n\n"
        )
        root = tmp_path / "store"
        assert main(["write", "--root", str(root), "--namespace", "web",
                     "--bucket", "20260728", "--assignment", "h1",
                     "--k", "8", "--input", str(events)]) == 0
        assert "2 sampled keys" in capsys.readouterr().out

        assert main(["query", "--root", str(root), "--namespace", "web",
                     "--function", "single", "--assignments", "h1"]) == 0
        # k=8 > distinct keys, so the estimate is exact: 12.0 + 3.5
        assert "15.5" in capsys.readouterr().out

    def test_bucket_filtered_query(self, tmp_path, capsys):
        root = tmp_path / "store"
        write_bucket(root, "20260728T1201", "h1", "a-")
        write_bucket(root, "20260728T1202", "h1", "b-", seed=1)
        capsys.readouterr()
        assert main(["query", "--root", str(root), "--namespace", "web",
                     "--function", "single", "--assignments", "h1",
                     "--buckets", "20260728T1201"]) == 0
        assert "single(h1)" in capsys.readouterr().out


class TestErrors:
    def test_input_and_demo_are_exclusive(self, tmp_path):
        base = ["write", "--root", str(tmp_path), "--namespace", "n",
                "--bucket", "20260728", "--assignment", "h1"]
        with pytest.raises(SystemExit, match="exactly one"):
            main(base)
        with pytest.raises(SystemExit, match="exactly one"):
            main(base + ["--demo", "10", "--input", "x.csv"])

    def test_invalid_bucket(self, tmp_path):
        with pytest.raises(SystemExit, match="bucket"):
            main(["write", "--root", str(tmp_path), "--namespace", "n",
                  "--bucket", "not-a-bucket", "--assignment", "h1",
                  "--demo", "10"])

    def test_ls_missing_store(self, tmp_path):
        with pytest.raises(SystemExit, match="no store"):
            main(["ls", "--root", str(tmp_path / "ghost")])

    def test_query_unknown_namespace(self, tmp_path, capsys):
        write_bucket(tmp_path / "s", "20260728", "h1", "a-")
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no sketch bundles"):
            main(["query", "--root", str(tmp_path / "s"),
                  "--namespace", "ghost", "--function", "single",
                  "--assignments", "h1"])

    def test_malformed_csv(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("only-one-column\n")
        with pytest.raises(SystemExit, match="key,weight"):
            main(["write", "--root", str(tmp_path / "s"), "--namespace", "n",
                  "--bucket", "20260728", "--assignment", "h1",
                  "--input", str(bad)])

    def test_non_numeric_weight_past_header(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("k,w\nflow,abc\n")
        with pytest.raises(SystemExit, match="non-numeric"):
            main(["write", "--root", str(tmp_path / "s"), "--namespace", "n",
                  "--bucket", "20260728", "--assignment", "h1",
                  "--input", str(bad)])

    def test_malformed_first_data_row_is_not_mistaken_for_header(
        self, tmp_path
    ):
        # "12x3" contains digits, so it is a typo'd weight, not a header
        # column name — the write must abort, not silently drop the row.
        bad = tmp_path / "bad.csv"
        bad.write_text("alice,12x3\nbob,4.0\n")
        with pytest.raises(SystemExit, match="non-numeric weight '12x3'"):
            main(["write", "--root", str(tmp_path / "s"), "--namespace", "n",
                  "--bucket", "20260728", "--assignment", "h1",
                  "--input", str(bad)])

    def test_held_migration_lock_reports_clean_cli_error(
        self, tmp_path, monkeypatch
    ):
        import json
        import os

        from repro.store import store as store_module

        root = tmp_path / "s"
        write_bucket(root, "20260728", "h1", "a-")
        # A legacy manifest makes the next open take the migration lock,
        # which a live process (us) already holds.
        (root / "manifest.json").write_text(
            json.dumps({"version": 1, "entries": []})
        )
        (root / ".store.lock").write_text(str(os.getpid()))
        original = store_module._StoreLock
        monkeypatch.setattr(
            store_module, "_StoreLock",
            lambda path, timeout=10.0: original(path, timeout=0.2),
        )
        with pytest.raises(SystemExit, match="held by running process"):
            main(["write", "--root", str(root), "--namespace", "n",
                  "--bucket", "20260728", "--assignment", "h1",
                  "--demo", "5"])

class TestLsJsonAndPrune:
    def test_ls_json_machine_readable(self, tmp_path, capsys):
        import json

        from repro.store import SummaryStore

        root = tmp_path / "store"
        write_bucket(root, "20260728T1201", "h1", "a-")
        write_bucket(root, "20260728T1202", "h1", "b-", seed=1)
        capsys.readouterr()
        assert main(["ls", "--root", str(root), "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        store = SummaryStore(root, create=False)
        assert listing == store.ls_json()  # CLI and API share one format
        web = listing["namespaces"][0]
        assert web["namespace"] == "web"
        assert web["buckets"] == ["20260728T1201", "20260728T1202"]
        assert web["version"] == store.version("web")
        assert all(row["nbytes"] > 0 for row in web["entries"])

    def test_ls_json_namespace_filter(self, tmp_path, capsys):
        import json

        root = tmp_path / "store"
        write_bucket(root, "20260728T1201", "h1", "a-")
        capsys.readouterr()
        assert main(["ls", "--root", str(root), "--json",
                     "--namespace", "nope"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["namespaces"] == []

    def test_prune_removes_retired_files(self, tmp_path, capsys):
        root = tmp_path / "store"
        write_bucket(root, "20260728T1201", "h1", "a-")
        orphan = root / "data" / "web" / "20260728T1201" / "part-0000.r3.cws"
        orphan.write_bytes(b"retired")
        capsys.readouterr()
        assert main(["prune", "--root", str(root)]) == 0
        out = capsys.readouterr().out
        assert "part-0000.r3.cws" in out and "pruned 1 file(s)" in out
        assert not orphan.exists()

        assert main(["prune", "--root", str(root)]) == 0
        assert "nothing to prune" in capsys.readouterr().out

    def test_prune_requires_existing_store(self, tmp_path):
        with pytest.raises(SystemExit, match="no store at"):
            main(["prune", "--root", str(tmp_path / "missing")])
