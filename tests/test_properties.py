"""Hypothesis-driven cross-module invariants.

These properties tie the layers together: arbitrary (within reason) weight
matrices and seeds must never break the structural guarantees the
estimators rely on.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.aggregates import AggregationSpec
from repro.core.summary import build_bottomk_summary
from repro.estimators.colocated import (
    colocated_estimator,
    inclusion_probabilities,
)
from repro.estimators.dispersed import (
    l1_estimator,
    lset_estimator,
    max_estimator,
    sset_estimator,
)
from repro.evaluation.analytic import make_context
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks, IppsRanks

weight_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 20), st.integers(2, 4)),
    elements=st.one_of(
        st.just(0.0), st.floats(min_value=0.01, max_value=1e4)
    ),
).filter(lambda w: (w > 0).any())

ks = st.integers(1, 8)
seeds = st.integers(0, 10_000)
methods = st.sampled_from(["shared_seed", "independent"])
families = st.sampled_from(["ipps", "exp"])


def make_summary(weights, k, seed, method, family_name, mode):
    family = IppsRanks() if family_name == "ipps" else ExponentialRanks()
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(family, weights, rng)
    names = [f"w{b}" for b in range(weights.shape[1])]
    return build_bottomk_summary(weights, draw, k, names, family, mode=mode)


class TestSummaryInvariants:
    @given(weights=weight_matrices, k=ks, seed=seeds, method=methods,
           family=families)
    @settings(max_examples=60, deadline=None)
    def test_union_size_bounds(self, weights, k, seed, method, family):
        summary = make_summary(weights, k, seed, method, family, "colocated")
        m = weights.shape[1]
        per_assignment = [
            min(k, int((weights[:, b] > 0).sum())) for b in range(m)
        ]
        assert max(per_assignment) <= summary.n_union <= sum(per_assignment)

    @given(weights=weight_matrices, k=ks, seed=seeds, method=methods,
           family=families)
    @settings(max_examples=60, deadline=None)
    def test_member_counts_per_assignment(self, weights, k, seed, method,
                                          family):
        summary = make_summary(weights, k, seed, method, family, "colocated")
        for b in range(weights.shape[1]):
            expected = min(k, int((weights[:, b] > 0).sum()))
            assert int(summary.member[:, b].sum()) == expected

    @given(weights=weight_matrices, k=ks, seed=seeds, method=methods,
           family=families)
    @settings(max_examples=60, deadline=None)
    def test_inclusion_probabilities_valid(self, weights, k, seed, method,
                                           family):
        summary = make_summary(weights, k, seed, method, family, "colocated")
        p = inclusion_probabilities(summary)
        assert np.all(p > 0.0)
        assert np.all(p <= 1.0 + 1e-12)


class TestEstimatorInvariants:
    @given(weights=weight_matrices, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_l1_nonnegative_everywhere(self, weights, k, seed):
        summary = make_summary(weights, k, seed, "shared_seed", "ipps",
                               "dispersed")
        names = tuple(summary.assignments)
        for variant in ("s", "l"):
            adjusted = l1_estimator(summary, names, variant)
            assert np.all(adjusted.values >= -1e-9)

    @given(weights=weight_matrices, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_max_adjusted_at_least_true_max(self, weights, k, seed):
        summary = make_summary(weights, k, seed, "shared_seed", "ipps",
                               "dispersed")
        adjusted = max_estimator(summary, tuple(summary.assignments))
        true_max = weights.max(axis=1)
        assert np.all(
            adjusted.values >= true_max[adjusted.positions] - 1e-9
        )

    @given(weights=weight_matrices, k=ks, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_sset_selection_within_lset(self, weights, k, seed):
        summary = make_summary(weights, k, seed, "shared_seed", "ipps",
                               "dispersed")
        spec = AggregationSpec("min", tuple(summary.assignments))
        s_positions = set(sset_estimator(summary, spec).positions.tolist())
        l_positions = set(lset_estimator(summary, spec).positions.tolist())
        assert s_positions <= l_positions

    @given(weights=weight_matrices, k=ks, seed=seeds, family=families)
    @settings(max_examples=60, deadline=None)
    def test_colocated_estimate_exact_when_k_covers_everything(
        self, weights, k, seed, family
    ):
        """If k >= #positive keys in every assignment, inclusion is certain
        and the estimate must be exactly the aggregate."""
        n = weights.shape[0]
        summary = make_summary(weights, n, seed, "shared_seed", family,
                               "colocated")
        spec = AggregationSpec("max", tuple(summary.assignments))
        estimate = colocated_estimator(summary, spec).total()
        assert estimate == pytest.approx(float(weights.max(axis=1).sum()))

    @given(weights=weight_matrices, k=ks, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_context_thresholds_positive_and_consistent(self, weights, k,
                                                        seed):
        family = IppsRanks()
        rng = np.random.default_rng(seed)
        draw = get_rank_method("shared_seed").draw(family, weights, rng)
        ctx = make_context(weights, draw, k, family)
        assert np.all(ctx.thresholds > 0.0)
        # members always have rank < their threshold
        member_rows, member_cols = np.where(ctx.member)
        assert np.all(
            draw.ranks[member_rows, member_cols]
            < ctx.thresholds[member_rows, member_cols]
        )

    @given(weights=weight_matrices, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_estimators_handle_k_exceeding_population(self, weights, seed):
        """k larger than the number of keys must not crash or bias."""
        n = weights.shape[0]
        summary = make_summary(weights, n + 5, seed, "shared_seed", "ipps",
                               "dispersed")
        names = tuple(summary.assignments)
        a_max = max_estimator(summary, names)
        # every positive-weight key is sampled with probability 1
        assert a_max.total() == pytest.approx(float(weights.max(axis=1).sum()))
