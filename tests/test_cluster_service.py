"""End-to-end cluster mode: routed ingest, exact merged answers, failover.

Real workers (``ServiceThread`` on ephemeral ports, slot-expanded
namespaces) behind a real :class:`CoordinatorThread`.  The acceptance
property throughout: a coordinator answer is **bit-identical** to an
offline single-process engine over the union of every ingested event —
or loudly ``partial``, never silently wrong.  Heartbeats are parked on a
long cadence so failure marking happens deterministically through the
request paths under test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine, jaccard_from_summary
from repro.service import (
    ClusterClient,
    ClusterError,
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)
from repro.service.cluster import (
    CoordinatorConfig,
    CoordinatorThread,
    slot_namespace_configs,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)
N_SLOTS = 4
#: topology salt under which HRW splits the 4 slots 2/2 between w1 and
#: w2 (and hands w3 a slot on join) — so membership changes move data
SALT = 4


class Clock:
    """A frozen clock: every event lands in one minute bucket, so keys may
    repeat freely across batches (the store's key-disjointness contract
    only binds across buckets)."""

    def __init__(self) -> None:
        self.now = 1_767_226_000.0

    def __call__(self) -> float:
        return self.now


class Cluster:
    """A coordinator plus N workers, joined and ready."""

    def __init__(self, root, n_workers: int, replication: int = 1) -> None:
        self.clock = Clock()
        self.workers: dict[str, ServiceThread] = {}
        self.clients: dict[str, ServiceClient] = {}
        self.killed: set[str] = set()
        self.root = root
        coordinator_config = CoordinatorConfig(
            root=str(root / "coordinator"),
            namespaces=(NS,),
            port=0,
            n_slots=N_SLOTS,
            replication=replication,
            salt=SALT,
            heartbeat_s=3600.0,  # deterministic: no background probes
            probe_timeout_s=2.0,
        )
        self.coordinator = CoordinatorThread(
            coordinator_config, clock=self.clock
        )
        self.coordinator.start()
        self.client = ServiceClient(port=self.coordinator.service.port)
        for i in range(1, n_workers + 1):
            self.add_worker(f"w{i}")

    def spawn_worker(self, worker_id: str) -> ServiceThread:
        config = ServiceConfig(
            store_root=str(self.root / worker_id),
            namespaces=slot_namespace_configs(NS, N_SLOTS),
            port=0,
            compact_to=None,
            tick_s=3600.0,
        )
        thread = ServiceThread(config, clock=self.clock)
        thread.start()
        self.workers[worker_id] = thread
        client = ServiceClient(port=thread.service.port)
        client.wait_ready()
        self.clients[worker_id] = client
        return thread

    def add_worker(self, worker_id: str) -> dict:
        thread = self.spawn_worker(worker_id)
        return self.client.cluster_join(
            worker_id, "127.0.0.1", thread.service.port
        )

    def kill(self, worker_id: str) -> None:
        self.workers[worker_id].kill()
        self.killed.add(worker_id)

    def close(self) -> None:
        self.client.close()
        self.coordinator.stop()
        for worker_id, thread in self.workers.items():
            if worker_id in self.killed:
                continue
            thread.stop()
        for client in self.clients.values():
            client.close()


@pytest.fixture
def cluster2(tmp_path):
    cluster = Cluster(tmp_path, n_workers=2, replication=1)
    yield cluster
    cluster.close()


@pytest.fixture
def replicated2(tmp_path):
    cluster = Cluster(tmp_path, n_workers=2, replication=2)
    yield cluster
    cluster.close()


def event_batch(lo: int, n: int = 60):
    keys = [f"k{i}" for i in range(lo, lo + n)]
    rng = np.random.default_rng(lo + 1)
    return keys, {
        "h1": (rng.pareto(1.3, n) + 0.05).tolist(),
        "h2": (rng.pareto(1.5, n) + 0.05).tolist(),
    }


def offline_engine(batches) -> QueryEngine:
    summarizer = NS.make_summarizer()
    for keys, weights in batches:
        summarizer.ingest_multi(
            keys, {name: np.asarray(w) for name, w in weights.items()}
        )
    return QueryEngine(summarizer.summary())


class TestExactness:
    def test_coordinator_matches_offline_engine(self, cluster2):
        batches = [event_batch(0), event_batch(1000, n=40)]
        for keys, weights in batches:
            result = cluster2.client.ingest("web", keys, weights, sync=True)
            assert result["ok"] and result["events"] == len(keys)
        offline = offline_engine(batches)
        for function in ("max", "min", "l1"):
            served = cluster2.client.estimate("web", function, ["h1", "h2"])
            assert served["partial"] is False
            assert served["estimate"] == offline.estimate(
                AggregationSpec(function, ("h1", "h2"))
            ), f"{function} diverged from the offline engine"
        single = cluster2.client.estimate("web", "single", ["h1"])
        assert single["estimate"] == offline.estimate(
            AggregationSpec("single", ("h1",))
        )
        jac = cluster2.client.jaccard("web", ["h1", "h2"])
        assert jac["estimate"] == jaccard_from_summary(
            offline.summary, ("h1", "h2"), "l"
        )

    def test_subpopulation_selection_is_exact(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        subset = keys[:9] + ["never-seen"]
        served = cluster2.client.estimate(
            "web", "max", ["h1", "h2"], keys=subset
        )
        from repro.core.predicates import key_in

        offline = offline_engine([(keys, weights)])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2")), predicate=key_in(subset)
        )

    def test_version_vector_caching(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        first = cluster2.client.estimate("web", "max", ["h1", "h2"])
        again = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert not first["cached"] and again["cached"]
        assert again["estimate"] == first["estimate"]
        assert again["partial"] is False  # replays keep the marker
        # any ingest moves some slot's version token: the next answer is
        # recomputed, not replayed
        more_keys, more_weights = event_batch(5000, n=10)
        cluster2.client.ingest("web", more_keys, more_weights, sync=True)
        third = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert not third["cached"]
        offline = offline_engine(
            [(keys, weights), (more_keys, more_weights)]
        )
        assert third["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_worker_rotation_preserves_answers(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        before = cluster2.client.estimate("web", "max", ["h1", "h2"])
        for client in cluster2.clients.values():
            client.rotate()
        after = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert after["estimate"] == before["estimate"]

    def test_replicas_hold_interchangeable_data(self, replicated2):
        keys, weights = event_batch(0)
        result = replicated2.client.ingest("web", keys, weights, sync=True)
        # R=2 over 2 workers: every slot delivered twice
        assert result["deliveries"] == 2 * result["slots"]
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        offline = offline_engine([(keys, weights)])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )


class TestFailover:
    def test_replica_failover_is_bit_exact(self, replicated2):
        keys, weights = event_batch(0)
        replicated2.client.ingest("web", keys, weights, sync=True)
        offline_max = offline_engine([(keys, weights)]).estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
        replicated2.kill("w2")
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        assert served["estimate"] == offline_max

    def test_unreplicated_kill_answers_partial_never_wrong(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        cluster2.kill("w2")
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is True
        assert served["missing_slots"]  # loud about what is gone
        assert served["cached"] is False
        # partial answers are never cached: the repeat recomputes too
        again = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert again["partial"] is True and again["cached"] is False
        # the surviving slots still answer exactly: the merged partial
        # must equal the offline engine restricted to the served keys —
        # an under-count of the *missing* slots only, not a wrong merge
        view = cluster2.client.cluster_status()
        alive_slots = [
            int(slot)
            for slot, owners in view["assignment"].items()
            if owners == ["w1"]
        ]
        assert sorted(served["missing_slots"]) == sorted(
            int(slot)
            for slot, owners in view["assignment"].items()
            if owners == ["w2"]
        )
        from repro.service.cluster import slot_for_key

        surviving = [
            (k, i) for i, k in enumerate(keys)
            if slot_for_key(k, N_SLOTS, SALT) in alive_slots
        ]
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi(
            [k for k, _ in surviving],
            {
                name: np.asarray([values[i] for _, i in surviving])
                for name, values in weights.items()
            },
        )
        restricted = QueryEngine(summarizer.summary()).estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
        assert served["estimate"] == restricted

    def test_ingest_past_a_dead_replica_marks_it_stale(self, replicated2):
        first = event_batch(0)
        replicated2.client.ingest("web", *first, sync=True)
        replicated2.kill("w2")
        second = event_batch(1000, n=30)
        result = replicated2.client.ingest("web", *second, sync=True)
        assert result["ok"]
        assert {row["worker"] for row in result["missed_replicas"]} == {"w2"}
        view = replicated2.client.cluster_status()
        assert set(view["stale"]) == {"w2"}
        # w2's copies missed the batch; only w1 may answer — exactly
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        offline = offline_engine([first, second])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_replica_rejection_after_apply_marks_stale(self, replicated2):
        """Regression: an owner that *rejects* a delivery (HTTP error,
        e.g. 429 queue-full) after a replica already applied it holds a
        divergent under-counting copy — it must be marked stale exactly
        like an unreachable owner, persisted, and never serve the slot.
        """
        from repro.service.cluster import slot_for_key
        from repro.service.cluster.topology import slot_namespace

        first = event_batch(0)
        replicated2.client.ingest("web", *first, sync=True)
        service = replicated2.coordinator.service
        # pick a slot delivered to w1 before w2, and make w2's daemon
        # refuse that slot's sub-batch (as a full ingest queue would)
        slot = next(
            s for s in range(N_SLOTS)
            if service.topology.slot_owners(s, ("w1", "w2"))
            == ("w1", "w2")
        )
        target_ns = slot_namespace("web", slot)
        real_ingest = service._clients["w2"].ingest

        def reject(namespace, keys, weights, sync=False):
            if namespace == target_ns:
                raise ServiceError(429, {"error": "ingest queue full"})
            return real_ingest(namespace, keys, weights, sync=sync)

        service._clients["w2"].ingest = reject
        second = event_batch(1000, n=30)
        try:
            with pytest.raises(ServiceError) as excinfo:
                replicated2.client.ingest("web", *second, sync=True)
        finally:
            service._clients["w2"].ingest = real_ingest
        assert excinfo.value.status == 502
        view = replicated2.client.cluster_status()
        assert slot in view["stale"].get("w2", [])
        # w1 applied the sub-batch w2 refused; slots sorted after the
        # rejection got nothing — the exact state the coordinator must
        # keep serving is first + the second batch's slots <= `slot`
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        keys2, weights2 = second
        applied = [
            i for i, k in enumerate(keys2)
            if slot_for_key(k, N_SLOTS, SALT) <= slot
        ]
        offline = offline_engine([
            first,
            (
                [keys2[i] for i in applied],
                {
                    name: [values[i] for i in applied]
                    for name, values in weights2.items()
                },
            ),
        ])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
        # the stale marking survives a coordinator restart: it was
        # persisted before the 502 went out
        replicated2.client.close()
        replicated2.coordinator.stop()
        replicated2.coordinator = CoordinatorThread(
            replicated2.coordinator.config, clock=replicated2.clock
        )
        replicated2.coordinator.start()
        replicated2.client = ServiceClient(
            port=replicated2.coordinator.service.port
        )
        view = replicated2.client.cluster_status()
        assert slot in view["stale"].get("w2", [])
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_no_owner_reachable_fails_ingest_loudly(self, cluster2):
        cluster2.kill("w1")
        cluster2.kill("w2")
        keys, weights = event_batch(0, n=10)
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.ingest("web", keys, weights, sync=True)
        assert excinfo.value.status == 502


class TestMembership:
    def test_join_hands_off_and_stays_exact(self, cluster2):
        batches = [event_batch(0)]
        cluster2.client.ingest("web", *batches[0], sync=True)
        joined = cluster2.add_worker("w3")
        assert joined["ok"] and not joined["rejoined"]
        assert joined["handoff"]["degraded"] == []
        if joined["slots"]:  # w3 took over some slots: data must follow
            assert joined["handoff"]["artifacts"] > 0
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        offline = offline_engine(batches)
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
        # new batches route to the new assignment and remain exact
        batches.append(event_batch(1000, n=30))
        cluster2.client.ingest("web", *batches[1], sync=True)
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        offline = offline_engine(batches)
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_graceful_leave_hands_off_and_stays_exact(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        left = cluster2.client.cluster_leave("w1")
        assert left["ok"] and left["handoff"]["degraded"] == []
        cluster2.workers.pop("w1").stop()
        cluster2.clients.pop("w1").close()
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        offline = offline_engine([(keys, weights)])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_dead_worker_leave_degrades_loudly_and_persists(self, cluster2):
        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        cluster2.kill("w2")
        left = cluster2.client.cluster_leave("w2")
        degraded = left["handoff"]["degraded"]
        assert degraded  # w2's un-handed-off slots are lost, and said so
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is True
        assert served["missing_slots"] == degraded
        view = cluster2.client.cluster_status()
        assert view["degraded_slots"] == degraded
        # degradation survives a coordinator restart: it lives in the
        # runtime tier, not in process memory
        cluster2.client.close()
        cluster2.coordinator.stop()
        cluster2.coordinator = CoordinatorThread(
            cluster2.coordinator.config, clock=cluster2.clock
        )
        cluster2.coordinator.start()
        cluster2.client = ServiceClient(
            port=cluster2.coordinator.service.port
        )
        view = cluster2.client.cluster_status()
        assert view["degraded_slots"] == degraded
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is True
        assert served["missing_slots"] == degraded

    def test_rejoin_after_crash_is_treated_as_stale(self, replicated2):
        keys, weights = event_batch(0)
        replicated2.client.ingest("web", keys, weights, sync=True)
        offline_max = offline_engine([(keys, weights)]).estimate(
            AggregationSpec("max", ("h1", "h2"))
        )
        replicated2.kill("w2")
        # the crashed worker comes back empty on a fresh port
        import shutil

        shutil.rmtree(replicated2.root / "w2")
        thread = replicated2.spawn_worker("w2")
        rejoined = replicated2.client.cluster_join(
            "w2", "127.0.0.1", thread.service.port
        )
        replicated2.killed.discard("w2")
        assert rejoined["rejoined"] and rejoined["stale_slots"]
        # its empty copies must never serve: answers still come from w1,
        # bit-exact
        served = replicated2.client.estimate("web", "max", ["h1", "h2"])
        assert served["partial"] is False
        assert served["estimate"] == offline_max

    def test_ownership_round_trip_churn_stays_exact(self, cluster2):
        """Regression: a slot returning to a former owner must not
        double-count.

        join(w3) + join(w4) displace earlier owners whose artifacts stay
        on disk; leave(w4) hands slots *back* to a former holder.  The
        handoff purges the target before copying — without the purge the
        returning worker's leftovers collide with the fresh copy and the
        duplicate-key guard turns the query into a 500.  Found by the
        hypothesis lifecycle suite (tests/test_cluster_exactness.py).
        """
        batches = [event_batch(0), event_batch(1000, n=30)]
        cluster2.client.ingest("web", *batches[0], sync=True)
        cluster2.client.ingest("web", *batches[1], sync=True)
        cluster2.add_worker("w3")
        cluster2.add_worker("w4")
        left = cluster2.client.cluster_leave("w4")
        assert left["ok"] and left["handoff"]["degraded"] == []
        cluster2.workers.pop("w4").stop()
        cluster2.clients.pop("w4").close()
        offline = offline_engine(batches)
        for function in ("max", "l1"):
            served = cluster2.client.estimate("web", function, ["h1", "h2"])
            assert served["partial"] is False
            assert served["estimate"] == offline.estimate(
                AggregationSpec(function, ("h1", "h2"))
            )
        # churn must also leave ingest routing consistent
        batches.append(event_batch(2000, n=20))
        cluster2.client.ingest("web", *batches[2], sync=True)
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        offline = offline_engine(batches)
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_leave_unknown_worker_404(self, cluster2):
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.cluster_leave("ghost")
        assert excinfo.value.status == 404


class TestCoordinatorApi:
    def test_health_and_cluster_view(self, cluster2):
        health = cluster2.client.liveness()
        assert health["ok"] and health["role"] == "coordinator"
        view = cluster2.client.cluster_status()
        assert view["topology"]["n_slots"] == N_SLOTS
        assert sorted(
            row["worker_id"] for row in view["workers"]
        ) == ["w1", "w2"]
        assert set(view["assignment"]) == {str(s) for s in range(N_SLOTS)}
        assert view["namespaces"] == ["web"]

    def test_empty_cluster_answers_empty(self, cluster2):
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        assert served["estimate"] is None and served["empty"]

    def test_temporal_queries_rejected_with_400(self, cluster2):
        keys, weights = event_batch(0, n=10)
        cluster2.client.ingest("web", keys, weights, sync=True)
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.window_series(
                "web", "max", ["h1", "h2"], window="15m"
            )
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.estimate("web", "max", ["h1", "h2"], decay="1h")
        assert excinfo.value.status == 400

    def test_unknown_namespace_and_function_rejected(self, cluster2):
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.estimate("ghost", "max", ["h1"])
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            cluster2.client.estimate("web", "median", ["h1"])
        assert excinfo.value.status == 400

    def test_query_get_is_curlable(self, cluster2):
        import json
        import urllib.request

        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        port = cluster2.coordinator.service.port
        url = (
            f"http://127.0.0.1:{port}/query?"
            "namespace=web&function=max&assignments=h1,h2"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.load(response)
        assert payload["estimate"] == cluster2.client.estimate(
            "web", "max", ["h1", "h2"]
        )["estimate"]

    def test_query_get_splits_keys_like_the_worker(self, cluster2):
        """Regression: ``GET /query?keys=a,b`` on the coordinator must
        select the listed keys, not filter on the string's characters.
        """
        import json
        import urllib.request

        from repro.core.predicates import key_in

        keys, weights = event_batch(0)
        cluster2.client.ingest("web", keys, weights, sync=True)
        subset = keys[:9] + ["never-seen"]
        port = cluster2.coordinator.service.port
        url = (
            f"http://127.0.0.1:{port}/query?"
            "namespace=web&function=max&assignments=h1,h2&keys="
            + ",".join(subset)
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.load(response)
        offline = offline_engine([(keys, weights)])
        assert payload["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2")), predicate=key_in(subset)
        )
        # the GET and POST surfaces parse to the same request — same
        # answer, and the second form replays the first's cache entry
        posted = cluster2.client.estimate(
            "web", "max", ["h1", "h2"], keys=subset
        )
        assert posted["estimate"] == payload["estimate"]
        assert posted["cached"] is True


class TestClusterClient:
    def test_plan_batch_partitions_in_stream_order(self):
        from repro.service.cluster import ClusterTopology

        client = ClusterClient({}, ClusterTopology(n_slots=N_SLOTS))
        keys = [f"k{i}" for i in range(50)]
        plan = client.plan_batch("web", keys)
        covered = sorted(i for indices in plan.values() for i in indices)
        assert covered == list(range(50))
        for indices in plan.values():
            assert indices == sorted(indices)  # stream order preserved

    def test_direct_routing_matches_coordinator_path(self, cluster2):
        keys, weights = event_batch(0)
        router = ClusterClient(
            {
                worker_id: ("127.0.0.1", thread.service.port)
                for worker_id, thread in cluster2.workers.items()
            },
            cluster2.coordinator.service.topology,
        )
        with router:
            result = router.ingest("web", keys, weights, sync=True)
        assert result["events"] == len(keys)
        served = cluster2.client.estimate("web", "max", ["h1", "h2"])
        offline = offline_engine([(keys, weights)])
        assert served["estimate"] == offline.estimate(
            AggregationSpec("max", ("h1", "h2"))
        )

    def test_ingest_validates_weight_lengths(self):
        client = ClusterClient({})
        with pytest.raises(ValueError):
            client.ingest("web", ["a", "b"], {"h1": [1.0]})
        with pytest.raises(ClusterError):  # no workers
            client.ingest("web", ["a"], {"h1": [1.0]})
