"""End-to-end estimation on engine-built summaries.

The `ShardedSummarizer` never sees a dense weight matrix, yet with a shared
hasher its hash-coordinated ranks are the *same* ranks the matrix-mode
harness draws via `SharedSeedRanks.draw_hashed`.  Estimates computed from
the two summaries must therefore agree to numerical precision — and both
must land near the exact aggregates at a reasonable k.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, exact_aggregate, jaccard_similarity
from repro.core.summary import build_bottomk_summary
from repro.engine import ShardedSummarizer, jaccard_from_summary
from repro.estimators.colocated import colocated_estimator
from repro.estimators.dispersed import l1_estimator, lset_estimator, sset_estimator
from repro.ranks.assignments import SharedSeedRanks
from repro.ranks.families import IppsRanks
from repro.ranks.hashing import KeyHasher

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()
K = 100
SALT = 21


@pytest.fixture(scope="module")
def pipeline():
    """One dataset summarized both ways from the same hash-coordinated ranks."""
    dataset = make_random_dataset(n_keys=220, n_assignments=3, seed=12,
                                  churn=0.25)
    hasher = KeyHasher(SALT)

    engine = ShardedSummarizer(
        K, dataset.assignments, n_shards=6, family=FAMILY, hasher=hasher
    )
    rng = np.random.default_rng(99)
    for b, name in enumerate(dataset.assignments):
        # Emit an unaggregated event stream: each key's weight arrives as
        # two exact halves (0.5·w + 0.5·w == w in IEEE arithmetic, so the
        # aggregated totals match the matrix weights bit-for-bit), shuffled
        # and chopped into irregular batches.
        keys, weights = [], []
        for pos, key in enumerate(dataset.keys):
            weight = dataset.weights[pos, b]
            if weight > 0.0:
                keys += [key, key]
                weights += [0.5 * weight, 0.5 * weight]
        order = rng.permutation(len(keys))
        keys = [keys[i] for i in order]
        weights = np.asarray(weights)[order]
        for lo in range(0, len(keys), 37):
            engine.ingest(name, keys[lo : lo + 37], weights[lo : lo + 37])
    engine_summary = engine.summary()

    draw = SharedSeedRanks().draw_hashed(
        FAMILY, dataset.weights, dataset.keys, hasher
    )
    matrix_dispersed = build_bottomk_summary(
        dataset.weights, draw, K, dataset.assignments, FAMILY, mode="dispersed"
    )
    matrix_colocated = build_bottomk_summary(
        dataset.weights, draw, K, dataset.assignments, FAMILY, mode="colocated"
    )
    return dataset, engine_summary, matrix_dispersed, matrix_colocated


class TestEngineVsMatrixHarness:
    """Same ranks ⇒ same estimates, down to numerical precision."""

    def test_same_union_keys_and_thresholds(self, pipeline):
        dataset, engine_summary, matrix_summary, _ = pipeline
        engine_keys = set(engine_summary.keys)
        matrix_keys = {dataset.keys[pos] for pos in matrix_summary.positions}
        assert engine_keys == matrix_keys
        np.testing.assert_allclose(
            np.sort(engine_summary.rank_kplus1),
            np.sort(matrix_summary.rank_kplus1),
            rtol=1e-12,
        )

    @pytest.mark.parametrize("variant", ["s", "l"])
    def test_l1_totals_agree(self, pipeline, variant):
        _, engine_summary, matrix_summary, _ = pipeline
        names = tuple(engine_summary.assignments)
        from_engine = l1_estimator(engine_summary, names, variant).total()
        from_matrix = l1_estimator(matrix_summary, names, variant).total()
        assert from_engine == pytest.approx(from_matrix, rel=1e-9)

    @pytest.mark.parametrize("function", ["max", "min"])
    @pytest.mark.parametrize("estimator", [sset_estimator, lset_estimator])
    def test_minmax_totals_agree(self, pipeline, function, estimator):
        _, engine_summary, matrix_summary, _ = pipeline
        spec = AggregationSpec(function, tuple(engine_summary.assignments))
        from_engine = estimator(engine_summary, spec).total()
        from_matrix = estimator(matrix_summary, spec).total()
        assert from_engine == pytest.approx(from_matrix, rel=1e-9)

    @pytest.mark.parametrize("variant", ["s", "l"])
    def test_jaccard_agrees(self, pipeline, variant):
        _, engine_summary, matrix_summary, _ = pipeline
        pair = tuple(engine_summary.assignments[:2])
        from_engine = jaccard_from_summary(engine_summary, pair, variant)
        from_matrix = jaccard_from_summary(matrix_summary, pair, variant)
        assert from_engine == pytest.approx(from_matrix, rel=1e-9)


class TestEngineVsExact:
    """Engine estimates converge on the exact aggregates (k = 100 of 220)."""

    @pytest.mark.parametrize("function", ["max", "min", "l1"])
    def test_dispersed_estimates_near_exact(self, pipeline, function):
        dataset, engine_summary, _, _ = pipeline
        names = tuple(dataset.assignments)
        spec = AggregationSpec(function, names)
        exact = exact_aggregate(dataset, spec)
        if function == "l1":
            estimate = l1_estimator(engine_summary, names, "l").total()
        else:
            estimate = lset_estimator(engine_summary, spec).total()
        assert estimate == pytest.approx(exact, rel=0.35)

    def test_jaccard_near_exact(self, pipeline):
        dataset, engine_summary, _, _ = pipeline
        a, b = dataset.assignments[:2]
        exact = jaccard_similarity(dataset, a, b)
        estimate = jaccard_from_summary(engine_summary, (a, b))
        assert estimate == pytest.approx(exact, abs=0.15)

    def test_colocated_harness_agrees_with_engine(self, pipeline):
        """The colocated RC estimator (full weight vectors, different
        algorithm) and the engine's dispersed path bracket the same L1."""
        dataset, engine_summary, _, matrix_colocated = pipeline
        names = tuple(dataset.assignments)
        spec = AggregationSpec("l1", names)
        exact = exact_aggregate(dataset, spec)
        colocated = colocated_estimator(matrix_colocated, spec).total()
        dispersed = l1_estimator(engine_summary, names, "l").total()
        assert colocated == pytest.approx(exact, rel=0.35)
        assert dispersed == pytest.approx(colocated, rel=0.6)
