"""Tests for text-table rendering."""

from __future__ import annotations

from repro.evaluation.reporting import (
    format_table,
    format_value,
    render_series_table,
)


class TestFormatValue:
    def test_ints_plain(self):
        assert format_value(42) == "42"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_scientific_for_extremes(self):
        assert "e+" in format_value(1.5e7)
        assert "e-" in format_value(1.5e-7)

    def test_moderate_floats_compact(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(123.456) == "123.5"

    def test_bool_and_str(self):
        assert format_value(True) == "True"
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"


class TestRenderSeries:
    def test_rows_per_k(self):
        text = render_series_table(
            [5, 10], {"est1": [1.0, 2.0], "est2": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert "est1" in lines[0] and "est2" in lines[0]
        assert len(lines) == 4

    def test_custom_k_header(self):
        text = render_series_table([1], {"a": [1.0]}, k_header="size")
        assert "size" in text.splitlines()[0]
