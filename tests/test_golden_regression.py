"""Golden regression snapshots of estimator totals.

Fixed-seed numeric snapshots of every estimator family on one small
synthetic dataset, committed as expected values.  A future refactor of the
kernels, the views cache, the rank draws, or the summary builders that
silently changes any estimate will fail here even if unbiasedness-style
statistical tests keep passing.

The snapshots were produced by the vectorized kernels, which
tests/test_kernel_parity.py proves identical to the reference estimators —
so these values pin *both* paths.  If a deliberate semantic change shifts
them, regenerate with the script in this file's docstring history (build
the same summaries and print ``engine.estimate`` per key below).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.core.summary import build_bottomk_summary
from repro.engine.queries import QueryEngine, jaccard_from_summary
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import get_rank_family

NAMES = ("h1", "h2", "h3")
DRAW_SEED = 777
K = 8

#: estimator totals on the fixed dataset/draw; exact to 1e-12 relative.
GOLDEN = {
    "coloc/single[h1]": 355.1543954119921,
    "coloc/single[h2]": 381.56646651464075,
    "coloc/single[h3]": 811.3595347715398,
    "coloc/min": 63.39011542196526,
    "coloc/max": 1203.6176548822934,
    "coloc/l1": 1140.2275394603282,
    "coloc/lth2": 281.07262639391394,
    "coloc/generic/max": 1219.2331009914892,
    "disp/sset-min": 54.49173624401771,
    "disp/lset-min": 31.198065659925525,
    "disp/sset-max": 1219.2331009914892,
    "disp/l1-l": 1188.0350353315634,
    "disp/lth2-lset": 260.5733485799668,
    "disp/rc[h1]": 331.256799442143,
    "disp/rc[h2]": 328.2516429880126,
    "disp/rc[h3]": 824.7570927613158,
    "disp/jaccard(h1,h2)": 0.10709574437670998,
    "ind-exp/lset-min(h1,h2)": 52.95822618110124,
    "ind-exp/sset-min(h1,h2)": 57.76264285301187,
    "exp-coloc/min": 75.85623422573626,
    "exp-coloc/max": 1190.3879165869573,
}


def make_weights() -> np.ndarray:
    rng = np.random.default_rng(12345)
    weights = rng.pareto(1.3, (30, 3)) * 10.0 + 0.1
    weights[rng.random((30, 3)) < 0.2] = 0.0
    dead = ~(weights > 0).any(axis=1)
    weights[dead, 0] = 1.0
    return weights


def summary_for(method: str, family: str, mode: str):
    weights = make_weights()
    family_obj = get_rank_family(family)
    rng = np.random.default_rng(DRAW_SEED)
    draw = get_rank_method(method).draw(family_obj, weights, rng)
    return build_bottomk_summary(
        weights, draw, K, list(NAMES), family_obj, mode=mode
    )


def check(actual: float, key: str) -> None:
    assert actual == pytest.approx(GOLDEN[key], rel=1e-12, abs=1e-12), key


def test_dataset_itself_is_stable():
    """The exact norms pin the synthetic dataset generation."""
    weights = make_weights()
    assert weights.min(axis=1).sum() == pytest.approx(
        54.26962428216312, rel=1e-12
    )
    assert weights.max(axis=1).sum() == pytest.approx(
        1064.5138872846521, rel=1e-12
    )


def test_colocated_snapshots():
    engine = QueryEngine(summary_for("shared_seed", "ipps", "colocated"))
    for b in NAMES:
        check(
            engine.estimate(AggregationSpec("single", (b,)), "colocated"),
            f"coloc/single[{b}]",
        )
    for function in ("min", "max", "l1"):
        check(
            engine.estimate(AggregationSpec(function, NAMES), "colocated"),
            f"coloc/{function}",
        )
    check(
        engine.estimate(
            AggregationSpec("lth_largest", NAMES, ell=2), "colocated"
        ),
        "coloc/lth2",
    )
    check(
        engine.estimate(AggregationSpec("max", NAMES), "generic"),
        "coloc/generic/max",
    )


def test_dispersed_snapshots():
    summary = summary_for("shared_seed", "ipps", "dispersed")
    engine = QueryEngine(summary)
    check(engine.estimate(AggregationSpec("min", NAMES), "sset"),
          "disp/sset-min")
    check(engine.estimate(AggregationSpec("min", NAMES), "lset"),
          "disp/lset-min")
    check(engine.estimate(AggregationSpec("max", NAMES), "sset"),
          "disp/sset-max")
    check(engine.estimate(AggregationSpec("l1", NAMES), "l1-l"),
          "disp/l1-l")
    check(
        engine.estimate(AggregationSpec("lth_largest", NAMES, ell=2), "lset"),
        "disp/lth2-lset",
    )
    for b in NAMES:
        check(
            engine.estimate(AggregationSpec("single", (b,)), "plain_rc"),
            f"disp/rc[{b}]",
        )
    check(jaccard_from_summary(summary, ("h1", "h2")), "disp/jaccard(h1,h2)")


def test_independent_exp_snapshots():
    engine = QueryEngine(summary_for("independent", "exp", "dispersed"))
    pair = ("h1", "h2")
    check(engine.estimate(AggregationSpec("min", pair), "lset"),
          "ind-exp/lset-min(h1,h2)")
    check(engine.estimate(AggregationSpec("min", pair), "sset"),
          "ind-exp/sset-min(h1,h2)")


def test_exp_colocated_snapshots():
    engine = QueryEngine(summary_for("shared_seed", "exp", "colocated"))
    check(engine.estimate(AggregationSpec("min", NAMES), "colocated"),
          "exp-coloc/min")
    check(engine.estimate(AggregationSpec("max", NAMES), "colocated"),
          "exp-coloc/max")


def test_reference_estimators_match_snapshots_too():
    """The reference path hits the same goldens (belt and braces)."""
    from repro.estimators.dispersed import lset_estimator, sset_estimator

    summary = summary_for("shared_seed", "ipps", "dispersed")
    check(sset_estimator(summary, AggregationSpec("min", NAMES)).total(),
          "disp/sset-min")
    check(lset_estimator(summary, AggregationSpec("min", NAMES)).total(),
          "disp/lset-min")
