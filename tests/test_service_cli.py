"""Tests for the repro-serve CLI (serve / status / ingest / query / shutdown)."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.service.cli import build_parser, main


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--root", "r", "--namespace", "web",
             "--assignments", "h1"]
        )
        assert args.k == 256 and args.granularity == "minute"
        assert args.compact_to == "hour" and args.port is None

    def test_query_defaults(self):
        args = build_parser().parse_args(
            ["query", "--namespace", "web", "--assignments", "h1", "h2"]
        )
        assert args.function == "max" and args.port == 8765

    def test_query_temporal_flags(self):
        args = build_parser().parse_args(
            ["query", "--namespace", "web", "--assignments", "h1",
             "--window", "15m", "--step", "1m", "--decay", "1h",
             "--anchor", "1785400000"]
        )
        assert args.window == "15m" and args.step == "1m"
        assert args.decay == "1h" and args.anchor == 1785400000.0

    def test_watch_requires_one_threshold_direction(self):
        base = ["watch", "--namespace", "web", "--assignments", "h1",
                "--every", "30s"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(base)  # no direction
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                base + ["--above", "1.0", "--below", "2.0"]
            )
        args = build_parser().parse_args(base + ["--above", "1e6"])
        assert args.above == 1e6 and args.below is None
        assert args.every == 30.0  # duration spec parsed to seconds

    def test_watch_poll_defaults(self):
        args = build_parser().parse_args(["watch-poll", "--id", "3"])
        assert args.id == 3 and args.after == 0 and args.wait == 30.0

    def test_serve_requires_exactly_one_config_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve"])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["serve", "--config", "cfg.json", "--root", "r"])
        with pytest.raises(SystemExit, match="needs --namespace"):
            main(["serve", "--root", str(tmp_path)])

    def test_serve_config_file_port_override(self, tmp_path):
        from repro.service.cli import _config_from_args
        from repro.service.config import NamespaceConfig, ServiceConfig

        config = ServiceConfig(
            store_root=str(tmp_path / "store"),
            namespaces=(NamespaceConfig("web", ("h1",)),),
            port=1234,
        )
        path = tmp_path / "service.json"
        config.dump(path)
        args = build_parser().parse_args(
            ["serve", "--config", str(path), "--port", "4321"]
        )
        assert _config_from_args(args) == config.with_port(4321)


class TestRoundTrip:
    def test_serve_ingest_query_status_shutdown(self, tmp_path, capsys):
        port = free_port()
        root = tmp_path / "store"
        serve_argv = [
            "serve", "--root", str(root), "--namespace", "web",
            "--assignments", "h1", "--k", "16", "--port", str(port),
            "--compact-to", "off", "--tick", "0.05",
        ]
        rc: list[int] = []
        thread = threading.Thread(
            target=lambda: rc.append(main(serve_argv)), daemon=True
        )
        thread.start()

        from repro.service.client import ServiceClient

        ServiceClient(port=port).wait_ready()

        csv = tmp_path / "events.csv"
        csv.write_text("alice,3.5\nbob,1.25\nalice,0.5\n")
        assert main([
            "ingest", "--port", str(port), "--namespace", "web",
            "--assignment", "h1", "--input", str(csv), "--sync",
        ]) == 0
        assert "ingested 3 events" in capsys.readouterr().out

        assert main([
            "query", "--port", str(port), "--namespace", "web",
            "--function", "single", "--assignments", "h1",
        ]) == 0
        out = capsys.readouterr().out
        assert "web: single(h1) ~= 5.25" in out  # 3.5 + 0.5 + 1.25, exact

        assert main(["status", "--port", str(port)]) == 0
        status_out = capsys.readouterr().out
        assert '"web"' in status_out and '"buffered_events"' in status_out

        assert main(["shutdown", "--port", str(port)]) == 0
        thread.join(10.0)
        assert not thread.is_alive() and rc == [0]
        # the daemon checkpointed on the way out
        from repro.store import SummaryStore

        assert SummaryStore(root, create=False).entries(
            "web", kind="checkpoint"
        )

    def test_client_error_is_clean_exit(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["status", "--port", str(free_port()), "--timeout", "0.2"])
