"""Tests for selection predicates."""

from __future__ import annotations

import numpy as np

from repro.core.dataset import MultiAssignmentDataset
from repro.core.predicates import (
    all_keys,
    attribute_equals,
    attribute_predicate,
    key_in,
)


def make_dataset() -> MultiAssignmentDataset:
    return MultiAssignmentDataset(
        keys=["a", "b", "c"],
        assignments=["x"],
        weights=[[1.0], [2.0], [3.0]],
        attributes={"port": [80, 443, 80]},
    )


class TestAllKeys:
    def test_select_everything(self):
        pred = all_keys()
        assert pred.select("anything", {})
        np.testing.assert_array_equal(
            pred.mask(make_dataset()), [True, True, True]
        )

    def test_repr(self):
        assert repr(all_keys()) == "AllKeys()"


class TestKeyIn:
    def test_membership(self):
        pred = key_in({"a", "c"})
        assert pred.select("a", {})
        assert not pred.select("b", {})

    def test_mask(self):
        np.testing.assert_array_equal(
            key_in({"a", "c"}).mask(make_dataset()), [True, False, True]
        )

    def test_repr_shows_size(self):
        assert "n=2" in repr(key_in({"a", "b"}))


class TestAttributeEquals:
    def test_select_uses_attribute(self):
        pred = attribute_equals("port", 80)
        assert pred.select("a", {"port": 80})
        assert not pred.select("a", {"port": 443})
        assert not pred.select("a", {})  # missing attribute -> False

    def test_mask(self):
        np.testing.assert_array_equal(
            attribute_equals("port", 80).mask(make_dataset()),
            [True, False, True],
        )


class TestAttributePredicate:
    def test_arbitrary_function(self):
        pred = attribute_predicate(
            lambda key, attrs: attrs.get("port", 0) > 100, label="high-port"
        )
        np.testing.assert_array_equal(
            pred.mask(make_dataset()), [False, True, False]
        )
        assert "high-port" in repr(pred)

    def test_can_use_key_identity(self):
        pred = attribute_predicate(lambda key, attrs: key != "b")
        np.testing.assert_array_equal(
            pred.mask(make_dataset()), [True, False, True]
        )


class TestMaskAtPushdown:
    def test_mask_at_subset_of_positions(self):
        ds = make_dataset()
        positions = np.array([2, 0])
        np.testing.assert_array_equal(
            attribute_equals("port", 80).mask_at(ds, positions), [True, True]
        )

    def test_mask_at_matches_select_for_missing_attribute(self):
        """mask_at is a vectorized override of the per-key select() loop,
        so the two must agree even when the attribute column is absent."""
        ds = make_dataset()
        positions = np.arange(3)
        for value in (None, 0, "x"):
            pred = attribute_equals("no_such_attribute", value)
            expected = [
                pred.select(key, {name: ds.attributes[name][pos]
                                  for name in ds.attributes})
                for pos, key in enumerate(ds.keys)
            ]
            assert pred.mask_at(ds, positions).tolist() == expected
            assert pred.mask(ds).tolist() == expected
