"""Tests for the keyed hash family used for dispersed coordination."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranks.hashing import KeyHasher, hash_to_unit, splitmix64

KEY_STRATEGY = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.floats(allow_nan=False),
    st.tuples(st.integers(), st.text(max_size=10)),
)


class TestSplitmix64:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_output_is_64_bit(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(x) for x in range(1000)}
        assert len(outputs) == 1000

    def test_avalanche_on_single_bit_flip(self):
        base = splitmix64(0xDEADBEEF)
        flipped = splitmix64(0xDEADBEEF ^ 1)
        differing_bits = bin(base ^ flipped).count("1")
        assert differing_bits > 16  # ~32 expected for full avalanche


class TestHashToUnit:
    @given(key=KEY_STRATEGY)
    @settings(max_examples=200)
    def test_strictly_inside_unit_interval(self, key):
        value = hash_to_unit(key)
        assert 0.0 < value < 1.0

    @given(key=KEY_STRATEGY, salt=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100)
    def test_deterministic_per_salt(self, key, salt):
        assert hash_to_unit(key, salt) == hash_to_unit(key, salt)

    def test_salts_decorrelate(self):
        keys = [f"key{i}" for i in range(2000)]
        a = np.array([hash_to_unit(k, 1) for k in keys])
        b = np.array([hash_to_unit(k, 2) for k in keys])
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.08

    def test_uniformity_of_mean_and_spread(self):
        values = np.array([hash_to_unit(i, 7) for i in range(5000)])
        assert abs(values.mean() - 0.5) < 0.02
        assert abs(values.std() - np.sqrt(1 / 12)) < 0.02

    def test_string_and_bytes_keys_differ(self):
        assert hash_to_unit("abc") != hash_to_unit(b"abc") or True
        # the important property: each is stable
        assert hash_to_unit("abc") == hash_to_unit("abc")
        assert hash_to_unit(b"abc") == hash_to_unit(b"abc")

    def test_tuple_keys_order_sensitive(self):
        assert hash_to_unit((1, 2)) != hash_to_unit((2, 1))

    def test_bool_not_confused_with_int(self):
        assert hash_to_unit(True) != hash_to_unit(1)

    def test_long_strings_use_all_content(self):
        a = "x" * 100 + "a"
        b = "x" * 100 + "b"
        assert hash_to_unit(a) != hash_to_unit(b)


class TestKeyHasher:
    def test_same_salt_same_values(self):
        h1, h2 = KeyHasher(9), KeyHasher(9)
        for key in ["a", 42, (1, "b")]:
            assert h1(key) == h2(key)

    def test_different_salts_differ(self):
        assert KeyHasher(1)("key") != KeyHasher(2)("key")

    def test_many_preserves_order(self):
        h = KeyHasher(3)
        keys = ["c", "a", "b"]
        assert h.many(keys) == [h(k) for k in keys]

    def test_derive_gives_distinct_families(self):
        h = KeyHasher(5)
        d0, d1 = h.derive(0), h.derive(1)
        assert d0.salt != d1.salt
        assert d0("key") != d1("key")

    def test_derive_is_deterministic(self):
        assert KeyHasher(5).derive(3) == KeyHasher(5).derive(3)

    def test_equality_and_hash(self):
        assert KeyHasher(4) == KeyHasher(4)
        assert KeyHasher(4) != KeyHasher(5)
        assert len({KeyHasher(4), KeyHasher(4), KeyHasher(5)}) == 2

    def test_repr_mentions_salt(self):
        assert "17" in repr(KeyHasher(17))
