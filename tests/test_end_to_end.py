"""End-to-end scenarios exercising the public API the way a user would."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AggregationSpec,
    BottomKStreamSampler,
    KeyHasher,
    MultiAssignmentDataset,
    colocated_estimator,
    dispersed_estimator,
    exact_aggregate,
    summarize_dataset,
)
from repro.core.summary import build_summary_from_sketches
from repro.datasets.ip_traffic import (
    IPTraceConfig,
    generate_ip_trace,
    ip_dispersed_dataset,
)
from repro.ranks.families import IppsRanks


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_summarize_and_query_colocated(self):
        ds = MultiAssignmentDataset(
            ["a", "b", "c", "d"],
            ["bytes", "packets"],
            [[100.0, 10.0], [50.0, 5.0], [10.0, 1.0], [5.0, 2.0]],
        )
        summary = summarize_dataset(ds, k=3, seed=1)
        spec = AggregationSpec("single", ("bytes",))
        estimate = colocated_estimator(summary, spec).total()
        assert estimate == pytest.approx(exact_aggregate(ds, spec), rel=1.0)

    def test_summarize_validates_inputs(self):
        ds = MultiAssignmentDataset(["a"], ["x"], [[1.0]])
        with pytest.raises(ValueError):
            summarize_dataset(ds, k=1, mode="nope")
        with pytest.raises(ValueError):
            summarize_dataset(ds, k=1, family="nope")
        with pytest.raises(ValueError):
            summarize_dataset(ds, k=1, method="nope")

    def test_subpopulation_query_with_predicate(self):
        from repro.core.predicates import attribute_equals

        ds = MultiAssignmentDataset(
            ["a", "b", "c"],
            ["w"],
            [[10.0], [20.0], [30.0]],
            attributes={"kind": ["x", "y", "x"]},
        )
        mask = attribute_equals("kind", "x").mask(ds)
        summary = summarize_dataset(ds, k=3, seed=0)
        adjusted = colocated_estimator(summary, AggregationSpec("single", ("w",)))
        # k = n: every key sampled with p = 1, estimate is exact.
        assert adjusted.subpopulation(mask) == pytest.approx(40.0)


class TestDispersedDeployment:
    """The full dispersed story: independent stream samplers, shared hash,
    central assembly, multi-assignment estimation — no collation ever."""

    def test_two_routers_one_estimate(self):
        rng = np.random.default_rng(7)
        config = IPTraceConfig(n_periods=2, flows_per_period=3000,
                               n_dest_ips=300)
        trace = generate_ip_trace(config, seed=7)
        # Ground truth from the collated view (test-only!).
        dataset = ip_dispersed_dataset(trace, "destip", "bytes")
        names = tuple(dataset.assignments)
        exact_l1 = exact_aggregate(dataset, AggregationSpec("l1", names))

        # Each period is summarized by its own pass; only the hasher is shared.
        family = IppsRanks()
        hasher = KeyHasher(2009)
        sketches = {}
        for period, name in enumerate(names):
            sampler = BottomKStreamSampler(k=150, family=family, hasher=hasher)
            totals: dict[int, float] = {}
            for record in trace:
                if record.period == period:
                    totals[record.dst_ip] = (
                        totals.get(record.dst_ip, 0.0) + record.bytes
                    )
            sampler.process_stream(totals.items())
            sketches[name] = sampler.sketch()

        summary = build_summary_from_sketches(sketches, family)
        spec = AggregationSpec("l1", names)
        estimate = dispersed_estimator(summary, spec).total()
        assert estimate == pytest.approx(exact_l1, rel=0.35)

    def test_estimates_improve_with_k(self):
        rng_cfg = IPTraceConfig(n_periods=2, flows_per_period=2000,
                                n_dest_ips=200)
        trace = generate_ip_trace(rng_cfg, seed=8)
        dataset = ip_dispersed_dataset(trace, "destip", "bytes")
        names = tuple(dataset.assignments)
        spec = AggregationSpec("max", names)
        exact = exact_aggregate(dataset, spec)
        family = IppsRanks()

        def rel_error_at(k: int, salts: range) -> float:
            errors = []
            for salt in salts:
                hasher = KeyHasher(salt)
                sketches = {}
                for period, name in enumerate(names):
                    sampler = BottomKStreamSampler(k, family, hasher)
                    totals: dict[int, float] = {}
                    for r in trace:
                        if r.period == period:
                            totals[r.dst_ip] = totals.get(r.dst_ip, 0.0) + r.bytes
                    sampler.process_stream(totals.items())
                    sketches[name] = sampler.sketch()
                summary = build_summary_from_sketches(sketches, family)
                estimate = dispersed_estimator(summary, spec).total()
                errors.append(abs(estimate - exact) / exact)
            return float(np.mean(errors))

        coarse = rel_error_at(10, range(8))
        fine = rel_error_at(120, range(8))
        assert fine < coarse
