"""Run every docstring example in the library as part of the suite."""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_module_names() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_module_names())
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
