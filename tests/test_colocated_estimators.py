"""Tests for the colocated inclusive estimators (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_bottomk_summary
from repro.estimators.colocated import (
    colocated_estimator,
    generic_consistent_estimator,
    inclusion_probabilities,
)
from repro.estimators.rank_conditioning import plain_rc_from_summary
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks, IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def summary_for(dataset, method="shared_seed", k=5, seed=0, family=FAMILY,
                mode="colocated"):
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(family, dataset.weights, rng)
    return build_bottomk_summary(
        dataset.weights, draw, k, dataset.assignments, family, mode=mode
    )


def mean_total(dataset, spec, method, runs=3000, k=4, family=FAMILY,
               estimator=colocated_estimator):
    total = 0.0
    for run in range(runs):
        summary = summary_for(dataset, method, k, seed=run, family=family)
        total += estimator(summary, spec).total()
    return total / runs


class TestUnbiasedness:
    """Statistical: mean estimate over many draws ≈ exact aggregate."""

    @pytest.mark.parametrize("method,family", [
        ("shared_seed", IppsRanks()),
        ("independent", IppsRanks()),
        ("shared_seed", ExponentialRanks()),
        ("independent_differences", ExponentialRanks()),
    ])
    def test_single_assignment(self, method, family):
        dataset = make_random_dataset(n_keys=20, seed=11)
        spec = AggregationSpec("single", ("w1",))
        exact = dataset.total("w1")
        mean = mean_total(dataset, spec, method, family=family)
        assert mean == pytest.approx(exact, rel=0.12)

    @pytest.mark.parametrize("function", ["min", "max", "l1"])
    def test_multi_assignment(self, function):
        dataset = make_random_dataset(n_keys=20, seed=12)
        spec = AggregationSpec(function, tuple(dataset.assignments))
        exact = float(key_values(dataset, spec).sum())
        mean = mean_total(dataset, spec, "shared_seed")
        assert mean == pytest.approx(exact, rel=0.12)

    def test_lth_largest(self):
        dataset = make_random_dataset(n_keys=20, seed=13)
        spec = AggregationSpec("lth_largest", tuple(dataset.assignments), ell=2)
        exact = float(key_values(dataset, spec).sum())
        mean = mean_total(dataset, spec, "shared_seed")
        assert mean == pytest.approx(exact, rel=0.12)

    def test_generic_estimator_unbiased(self):
        dataset = make_random_dataset(n_keys=20, seed=14)
        spec = AggregationSpec("l1", tuple(dataset.assignments))
        exact = float(key_values(dataset, spec).sum())
        mean = mean_total(
            dataset, spec, "shared_seed", estimator=generic_consistent_estimator
        )
        assert mean == pytest.approx(exact, rel=0.15)


class TestInclusionProbabilities:
    def test_in_unit_interval(self):
        dataset = make_random_dataset(seed=2)
        for method in ("shared_seed", "independent"):
            summary = summary_for(dataset, method)
            p = inclusion_probabilities(summary)
            assert np.all(p > 0.0) and np.all(p <= 1.0)

    def test_independent_differences_probabilities_valid(self):
        dataset = make_random_dataset(seed=2)
        summary = summary_for(
            dataset, "independent_differences", family=ExponentialRanks()
        )
        p = inclusion_probabilities(summary)
        assert np.all(p > 0.0) and np.all(p <= 1.0)

    def test_shared_seed_probability_is_max_over_assignments(self):
        dataset = make_random_dataset(seed=3)
        summary = summary_for(dataset, "shared_seed")
        p = inclusion_probabilities(summary)
        per_b = summary.family.cdf_matrix(summary.weights, summary.thresholds)
        np.testing.assert_allclose(p, per_b.max(axis=1))

    def test_independent_probability_at_least_shared_formula_terms(self):
        """1 − Π(1 − q_b) >= max_b q_b for identical per-assignment terms."""
        dataset = make_random_dataset(seed=3)
        summary = summary_for(dataset, "independent")
        p = inclusion_probabilities(summary)
        per_b = summary.family.cdf_matrix(summary.weights, summary.thresholds)
        assert np.all(p >= per_b.max(axis=1) - 1e-12)

    def test_inclusion_matches_empirical_frequency(self):
        """Union membership frequency ≈ mean analytic probability."""
        dataset = make_random_dataset(n_keys=15, seed=5)
        counts = np.zeros(15)
        p_sum = np.zeros(15)
        runs = 3000
        for run in range(runs):
            summary = summary_for(dataset, "shared_seed", k=3, seed=run)
            counts[summary.positions] += 1
            # accumulate analytic p at the sampled positions only: we
            # compare E[1{sampled}] = E[p] via the tower rule by averaging
            # p over *all* runs, so also add p for unsampled keys using the
            # summary of the run through the full-data context instead.
        from repro.evaluation.analytic import colocated_inclusion_p, make_context
        for run in range(runs // 10):
            rng = np.random.default_rng([run])
            draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
            ctx = make_context(dataset.weights, draw, 3, FAMILY)
            p_sum += colocated_inclusion_p(ctx)
        np.testing.assert_allclose(
            counts / runs, p_sum / (runs // 10), atol=0.05
        )

    def test_requires_colocated_mode(self):
        dataset = make_random_dataset(seed=2)
        summary = summary_for(dataset, mode="dispersed")
        with pytest.raises(ValueError, match="colocated"):
            inclusion_probabilities(summary)


class TestDominance:
    """Lemma 8.2 / Lemma 5.1 as deterministic per-draw statements."""

    def test_inclusive_p_at_least_plain_p(self):
        """Inclusive inclusion probability ≥ the single-sketch probability,
        hence inclusive per-key variance is never larger (Lemma 8.2)."""
        dataset = make_random_dataset(seed=7)
        summary = summary_for(dataset, "shared_seed", k=4)
        p_inclusive = inclusion_probabilities(summary)
        for b_idx in range(dataset.n_assignments):
            per_b = summary.family.cdf_matrix(
                summary.weights[:, b_idx], summary.thresholds[:, b_idx]
            )
            assert np.all(p_inclusive >= per_b - 1e-12)

    def test_generic_selection_subset_of_inclusive(self):
        dataset = make_random_dataset(seed=8)
        summary = summary_for(dataset, "shared_seed", k=4)
        spec = AggregationSpec("max", tuple(dataset.assignments))
        generic = generic_consistent_estimator(summary, spec)
        assert set(generic.positions) <= set(summary.positions)

    def test_generic_requires_consistent_ranks(self):
        dataset = make_random_dataset(seed=8)
        summary = summary_for(dataset, "independent")
        with pytest.raises(ValueError, match="consistent"):
            generic_consistent_estimator(
                summary, AggregationSpec("max", tuple(dataset.assignments))
            )


class TestPlainRC:
    def test_uses_only_own_sketch_members(self):
        dataset = make_random_dataset(seed=9)
        summary = summary_for(dataset, "shared_seed", k=4)
        adjusted = plain_rc_from_summary(summary, "w1")
        member_rows = summary.member[:, 0]
        assert set(adjusted.positions) == set(summary.positions[member_rows])

    def test_unbiased(self):
        dataset = make_random_dataset(n_keys=20, seed=10)
        exact = dataset.total("w2")
        total = 0.0
        runs = 3000
        for run in range(runs):
            summary = summary_for(dataset, "shared_seed", k=4, seed=run)
            total += plain_rc_from_summary(summary, "w2").total()
        assert total / runs == pytest.approx(exact, rel=0.1)

    def test_requires_bottomk_summary(self):
        dataset = make_random_dataset(seed=9)
        from repro.core.summary import build_poisson_summary
        from repro.sampling.poisson import calibrate_tau

        rng = np.random.default_rng(0)
        draw = get_rank_method("shared_seed").draw(FAMILY, dataset.weights, rng)
        taus = np.array(
            [calibrate_tau(dataset.weights[:, b], FAMILY, 4.0)
             for b in range(dataset.n_assignments)]
        )
        summary = build_poisson_summary(
            dataset.weights, draw, taus, dataset.assignments, FAMILY
        )
        with pytest.raises(ValueError, match="bottom-k"):
            plain_rc_from_summary(summary, "w1")
