"""LiveWindowManager + QueryPlanner behavior (fake-clock unit tests).

The service's bit-exactness property is pinned by hypothesis in
test_service_exactness.py; this file checks the mechanics: rotation on
bucket boundaries, checkpoint/resume consumption, version tokens, the
planner's merged live+stored view, and its version-keyed result cache.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service.config import NamespaceConfig, ServiceConfig
from repro.service.planner import QueryPlanner
from repro.service.windows import CHECKPOINT_PART, LiveWindowManager
from repro.store import SummaryStore

T0 = datetime(2026, 7, 28, 12, 0, 30, tzinfo=timezone.utc).timestamp()
NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=9)


class FakeClock:
    def __init__(self, now: float = T0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_manager(root, clock, configs=(NS,)):
    return LiveWindowManager(SummaryStore(root), configs, clock=clock)


def batch(lo: int, n: int = 20, scale: float = 1.0):
    keys = [f"k{i}" for i in range(lo, lo + n)]
    w1 = (np.linspace(1.0, 3.0, n) * scale).tolist()
    return keys, {"h1": np.asarray(w1), "h2": np.asarray(w1) * 2.0}


def offline_engine(event_batches, config=NS) -> QueryEngine:
    summarizer = config.make_summarizer()
    for keys, weights in event_batches:
        summarizer.ingest_multi(keys, weights)
    return QueryEngine(summarizer.summary())


class TestNamespaceConfig:
    def test_round_trip(self):
        assert NamespaceConfig.from_json(NS.to_json()) == NS

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one assignment"):
            NamespaceConfig("web", ())
        with pytest.raises(ValueError, match="k must be"):
            NamespaceConfig("web", ("h1",), k=0)
        with pytest.raises(ValueError, match="non-empty"):
            NamespaceConfig("", ("h1",))

    def test_make_summarizer_carries_coordination(self):
        summarizer = NS.make_summarizer()
        assert summarizer.k == NS.k
        assert summarizer.hasher.salt == NS.salt
        assert summarizer.assignments == list(NS.assignments)


class TestServiceConfig:
    def make(self, **overrides):
        base = dict(store_root="/tmp/x", namespaces=(NS,))
        base.update(overrides)
        return ServiceConfig(**base)

    def test_json_round_trip(self, tmp_path):
        config = self.make(port=9999, executor="thread:2")
        path = tmp_path / "service.json"
        config.dump(path)
        assert ServiceConfig.from_file(path) == config

    def test_namespaces_from_plain_dicts(self):
        config = ServiceConfig(
            store_root="/tmp/x", namespaces=[NS.to_json()]
        )
        assert config.namespaces == (NS,)

    def test_validation(self):
        with pytest.raises(ValueError, match="duplicate namespace"):
            self.make(namespaces=(NS, NS))
        with pytest.raises(ValueError, match="at least one namespace"):
            self.make(namespaces=())
        with pytest.raises(ValueError, match="granularity"):
            self.make(granularity="fortnight")
        with pytest.raises(ValueError, match="compaction granularity"):
            self.make(compact_to="fortnight")
        with pytest.raises(ValueError, match="unknown service config keys"):
            ServiceConfig.from_json(
                {"store_root": "x", "namespaces": [NS.to_json()],
                 "portt": 80}
            )
        with pytest.raises(ValueError, match="needs 'store_root'"):
            ServiceConfig.from_json({"namespaces": [NS.to_json()]})

    def test_namespace_lookup(self):
        config = self.make()
        assert config.namespace("web") == NS
        with pytest.raises(KeyError, match="unknown namespace"):
            config.namespace("ghost")


class TestRotation:
    def test_window_follows_the_clock(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        assert manager.live_info("web")["bucket"] == "20260728T1200"
        keys, weights = batch(0)
        manager.ingest("web", keys, weights)
        assert manager.live_info("web")["buffered_events"] == 40

        clock.advance(60.0)
        written = manager.rotate()
        assert [entry.bucket for entry in written] == ["20260728T1200"]
        info = manager.live_info("web")
        assert info["bucket"] == "20260728T1201"
        assert info["buffered_events"] == 0

    def test_ingest_rotates_first(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        clock.advance(60.0)
        # no explicit rotate(): the batch's arrival time drives it
        result = manager.ingest("web", *batch(100))
        assert result["bucket"] == "20260728T1201"
        assert [
            entry.bucket for entry in manager.store.entries("web")
        ] == ["20260728T1200"]

    def test_empty_window_never_publishes(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        clock.advance(60.0)
        assert manager.rotate() == []
        assert manager.store.entries("web") == []
        assert manager.rotate(force=True) == []  # nothing buffered either

    def test_mid_bucket_flush_publishes_without_reset(self, tmp_path):
        from repro.service.windows import LIVE_PART

        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        written = manager.rotate(force=True)
        assert [(e.bucket, e.part) for e in written] == [
            ("20260728T1200", LIVE_PART)
        ]
        # the flush also wrote a checkpoint (before the bundle), so a
        # crash at any instant resumes state covering the flush artifact
        assert [
            e.part for e in manager.store.entries("web", kind="checkpoint")
        ] == [CHECKPOINT_PART]
        info = manager.live_info("web")
        assert info["bucket"] == "20260728T1200"
        assert info["buffered_events"] == 40  # flush does not reset

    def test_flush_then_repeated_keys_stays_exact(self, tmp_path):
        # Regression: a mid-bucket flush followed by more events for the
        # SAME keys must not brick the namespace (the flush artifact is
        # overwritten, never joined by a second overlapping part).
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        planner = QueryPlanner(manager)
        keys, weights = batch(0)
        manager.ingest("web", keys, weights)
        manager.rotate(force=True)
        manager.ingest("web", keys, weights)  # same keys, same bucket
        offline = offline_engine([(keys, weights), (keys, weights)])
        spec = AggregationSpec("max", ("h1", "h2"))
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )
        # the boundary rotation replaces the flush with the full bucket
        clock.advance(60.0)
        manager.rotate()
        assert len(manager.store.bundle_entries("web")) == 1
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )

    def test_flush_survives_a_crash(self, tmp_path):
        # Flush is crash durability: a manager that dies WITHOUT a clean
        # shutdown resumes the flush's own checkpoint and keeps serving
        # the flushed events — including after post-restart ingestion
        # masks the flush artifact and rotation overwrites it.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.rotate(force=True)
        del manager  # crash: no checkpoint()
        revived = make_manager(tmp_path, clock)
        assert revived.live_info("web")["buffered_events"] == 40
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )
        # the review repro: one post-restart event batch must ADD to the
        # flushed data, not replace it
        revived.ingest("web", *batch(100))
        offline = offline_engine([batch(0), batch(100)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )
        clock.advance(60.0)
        revived.rotate()
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )

    def test_orphan_flush_without_checkpoint_is_rescued(self, tmp_path):
        # A store whose flush artifact has no checkpoint beside it (a
        # pre-invariant store, or an operator removed the checkpoint):
        # startup must not open a fresh window over the flushed bundle —
        # it gets re-homed to a recovered part the planner always serves
        # and rotation never overwrites.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.rotate(force=True)
        manager.store.remove("web", "20260728T1200", CHECKPOINT_PART)
        del manager  # crash

        revived = make_manager(tmp_path, clock)
        assert revived.live_info("web")["buffered_events"] == 0
        parts = [
            (e.part, e.kind) for e in revived.store.entries("web")
        ]
        assert parts == [("recovered-0000", "bottomk")]
        revived.ingest("web", *batch(100))
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0), batch(100)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )
        # boundary rotation publishes only the new window's events and
        # leaves the recovered bundle alone
        clock.advance(60.0)
        revived.rotate()
        assert {
            e.part for e in revived.store.bundle_entries("web")
        } == {"recovered-0000", "live"}
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )

    def test_rescue_is_idempotent_across_its_own_crash(self, tmp_path):
        # A rescue that crashed between its recovered-part write and the
        # LIVE_PART remove must not duplicate the bundle on the next
        # start (two overlapping-key artifacts would poison every merge).
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.rotate(force=True)
        manager.store.remove("web", "20260728T1200", CHECKPOINT_PART)
        # simulate the half-done rescue: recovered copy written, orphan
        # still in place
        bundle = manager.store.read("web", "20260728T1200", "live")
        manager.store.write("web", "20260728T1200", bundle,
                            part="recovered-0000")
        del manager

        revived = make_manager(tmp_path, clock)
        assert [
            (e.part, e.kind) for e in revived.store.entries("web")
        ] == [("recovered-0000", "bottomk")]
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )

    def test_flush_checkpoint_never_staler_than_bundle(self, tmp_path):
        # Review repro: clean shutdown (checkpoint E1) -> restart resumes
        # (checkpoint stays on disk) -> ingest E2 -> flush -> crash.  The
        # flush must have refreshed the checkpoint, or the restart would
        # resume E1 alone and overwrite the E1+E2 flush artifact with it.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.checkpoint()  # clean shutdown
        del manager

        resumed = make_manager(tmp_path, clock)
        resumed.ingest("web", *batch(100))
        resumed.rotate(force=True)  # flush E1+E2
        del resumed  # crash: no checkpoint()

        revived = make_manager(tmp_path, clock)
        assert revived.live_info("web")["buffered_events"] == 80
        revived.ingest("web", *batch(200))
        clock.advance(60.0)
        revived.rotate()
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0), batch(100), batch(200)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )

    def test_boundary_rotation_crash_before_checkpoint_retire(
        self, tmp_path, monkeypatch
    ):
        # A closing window with an on-disk checkpoint (left by a flush)
        # must refresh it BEFORE publishing the final bundle: a crash
        # after the bundle write but before the checkpoint retire then
        # resumes the full window, not the flush-time prefix that would
        # mask and overwrite the newer bundle.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.rotate(force=True)  # checkpoint + bundle hold E1
        manager.ingest("web", *batch(100))  # E2, same bucket
        clock.advance(60.0)

        def dying_remove(*args, **kwargs):
            raise RuntimeError("crash before the checkpoint retire")

        monkeypatch.setattr(manager.store, "remove", dying_remove)
        with pytest.raises(RuntimeError, match="checkpoint retire"):
            manager.rotate()  # final bundle published, then "crash"
        del manager

        revived = make_manager(tmp_path, clock)
        assert revived.live_info("web")["buffered_events"] == 80  # E1+E2
        clock.advance(60.0)
        revived.rotate()
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0), batch(100)])
        assert (
            QueryPlanner(revived).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )

    def test_unknown_namespace(self, tmp_path):
        manager = make_manager(tmp_path, FakeClock())
        with pytest.raises(KeyError, match="unknown namespace"):
            manager.ingest("ghost", *batch(0))
        with pytest.raises(KeyError, match="unknown namespace"):
            manager.version("ghost")

    def test_version_moves_on_ingest_and_rotation(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        seen = {manager.version("web")}
        manager.ingest("web", *batch(0))
        seen.add(manager.version("web"))
        clock.advance(60.0)
        manager.rotate()
        seen.add(manager.version("web"))
        assert len(seen) == 3


class TestCheckpointResume:
    def test_clean_shutdown_round_trip(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        clock.advance(60.0)
        manager.rotate()
        manager.ingest("web", *batch(100))
        written = manager.checkpoint()
        assert [entry.part for entry in written] == [CHECKPOINT_PART]

        resumed = make_manager(tmp_path, clock)
        info = resumed.live_info("web")
        assert info["bucket"] == "20260728T1201"
        assert info["buffered_events"] == 40
        # the checkpoint stays durable until a rotation supersedes it
        # (a crash right after restart must not lose persisted events)
        assert len(resumed.store.entries("web", kind="checkpoint")) == 1
        clock.advance(60.0)
        resumed.rotate()
        assert resumed.store.entries("web", kind="checkpoint") == []
        # and the restored stream continues bit-identically
        spec = AggregationSpec("max", ("h1", "h2"))
        offline = offline_engine([batch(0), batch(100)])
        planner = QueryPlanner(resumed)
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )

    def test_empty_windows_are_not_checkpointed(self, tmp_path):
        manager = make_manager(tmp_path, FakeClock())
        assert manager.checkpoint() == []

    def test_resume_rejects_changed_coordination(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.checkpoint()
        changed = NamespaceConfig("web", ("h1", "h2"), k=8, n_shards=2,
                                  salt=9)
        with pytest.raises(ValueError, match="different configuration"):
            make_manager(tmp_path, clock, configs=(changed,))

    def test_rotation_supersedes_a_stale_checkpoint(self, tmp_path):
        # checkpoint() on a live service, then a rotation: the published
        # bundle must retire the checkpoint, or the next resume would
        # double-publish the same events.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        manager.ingest("web", *batch(0))
        manager.checkpoint()
        clock.advance(60.0)
        manager.rotate()
        assert manager.store.entries("web", kind="checkpoint") == []
        resumed = make_manager(tmp_path, clock)
        assert resumed.live_info("web")["buffered_events"] == 0
        offline = offline_engine([batch(0)])
        spec = AggregationSpec("max", ("h1", "h2"))
        planner = QueryPlanner(resumed)
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )


class TestPlanner:
    def test_merged_live_plus_stored_is_exact(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        planner = QueryPlanner(manager)
        manager.ingest("web", *batch(0))
        clock.advance(60.0)
        manager.rotate()
        manager.ingest("web", *batch(100))

        offline = offline_engine([batch(0), batch(100)])
        for function in ("max", "min"):
            spec = AggregationSpec(function, ("h1", "h2"))
            got = planner.estimate("web", function, ("h1", "h2"))
            assert got["estimate"] == offline.estimate(spec)
            assert got["sources"] == {
                "stored_entries": 1,
                "live_events": 40,
                "union_keys": got["sources"]["union_keys"],
            }

    def test_result_cache_hit_and_invalidation(self, tmp_path):
        manager = make_manager(tmp_path, FakeClock())
        planner = QueryPlanner(manager)
        manager.ingest("web", *batch(0))
        first = planner.estimate("web", "max", ("h1", "h2"))
        again = planner.estimate("web", "max", ("h1", "h2"))
        assert not first["cached"] and again["cached"]
        assert again["estimate"] == first["estimate"]

        manager.ingest("web", *batch(100))  # version moves -> cache miss
        after = planner.estimate("web", "max", ("h1", "h2"))
        assert not after["cached"]
        assert after["version"] != first["version"]
        assert planner.stats["hits"] == 1 and planner.stats["misses"] == 2

    def test_compaction_changes_version_not_answers(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        planner = QueryPlanner(manager)
        for lo in (0, 100):
            manager.ingest("web", *batch(lo))
            clock.advance(60.0)
            manager.rotate()
        before = planner.estimate("web", "max", ("h1", "h2"))
        manager.compact(to="hour")
        after = planner.estimate("web", "max", ("h1", "h2"))
        assert not after["cached"]  # manifest moved, cache invalidated
        assert after["estimate"] == before["estimate"]  # but exactly equal

    def test_compaction_skips_the_active_group(self, tmp_path):
        # The coarse bucket a non-empty window still feeds (it holds a
        # flush artifact that will be overwritten) must not roll up; it
        # compacts on the next pass, once the window has moved on.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        planner = QueryPlanner(manager)
        manager.ingest("web", *batch(0))
        clock.advance(60.0)
        manager.ingest("web", *batch(100))
        manager.rotate(force=True)  # flush the active minute too
        offline = offline_engine([batch(0), batch(100)])
        spec = AggregationSpec("max", ("h1", "h2"))
        assert manager.compact(to="hour") == []  # active hour: skipped
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )
        clock.advance(3600.0)
        manager.rotate()
        written = manager.compact(to="hour")  # window moved on: rolls up
        assert [entry.bucket for entry in written] == ["20260728T12"]
        assert (
            planner.estimate("web", "max", ("h1", "h2"))["estimate"]
            == offline.estimate(spec)
        )

    def test_offline_compaction_skips_checkpointed_buckets(self, tmp_path):
        # Regression: with the daemon down, the store holds both a flush
        # bundle and a checkpoint for the same bucket.  An operator's
        # `repro-store compact` must not fold that bundle into a rollup —
        # the resumed window would re-publish the same keys and poison
        # the store with an unmergeable duplicate.
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        # hour 12: complete (window moved on), safe to roll up
        manager.ingest("web", *batch(0))
        clock.advance(3600.0)
        # hour 13: flushed AND checkpointed (clean shutdown mid-bucket)
        manager.ingest("web", *batch(100))
        manager.rotate(force=True)
        manager.checkpoint()
        del manager  # daemon down

        store = SummaryStore(tmp_path, create=False)
        written = store.compact("web", to="hour")  # plain offline CLI path
        assert [entry.bucket for entry in written] == ["20260728T12"]
        buckets = {entry.bucket for entry in store.bundle_entries("web")}
        assert buckets == {"20260728T12", "20260728T1300"}  # 13: untouched

        resumed = make_manager(tmp_path, clock)
        offline = offline_engine([batch(0), batch(100)])
        spec = AggregationSpec("max", ("h1", "h2"))
        assert (
            QueryPlanner(resumed).estimate("web", "max", ("h1", "h2"))[
                "estimate"
            ]
            == offline.estimate(spec)
        )
        # once the checkpoint is consumed by a rotation, hour 13 rolls up
        clock.advance(3600.0)
        resumed.rotate()
        fresh = SummaryStore(tmp_path, create=False)
        assert [entry.bucket for entry in fresh.compact("web", to="hour")] == [
            "20260728T13"
        ]

    def test_time_window_selection(self, tmp_path):
        clock = FakeClock()
        manager = make_manager(tmp_path, clock)
        planner = QueryPlanner(manager)
        manager.ingest("web", *batch(0))
        clock.advance(60.0)
        manager.rotate()
        manager.ingest("web", *batch(100))

        spec = AggregationSpec("max", ("h1", "h2"))
        stored_only = planner.estimate(
            "web", "max", ("h1", "h2"), until="20260728T1200"
        )
        assert stored_only["estimate"] == offline_engine(
            [batch(0)]
        ).estimate(spec)
        live_only = planner.estimate(
            "web", "max", ("h1", "h2"), since="20260728T1201"
        )
        assert live_only["estimate"] == offline_engine(
            [batch(100)]
        ).estimate(spec)

    def test_key_subpopulation(self, tmp_path):
        manager = make_manager(tmp_path, FakeClock())
        planner = QueryPlanner(manager)
        keys, weights = batch(0, n=40)
        manager.ingest("web", keys, weights)
        subset = keys[:10]
        offline = offline_engine([(keys, weights)])
        from repro.core.predicates import key_in

        spec = AggregationSpec("max", ("h1", "h2"))
        got = planner.estimate("web", "max", ("h1", "h2"), keys=subset)
        assert got["estimate"] == offline.estimate(
            spec, predicate=key_in(subset)
        )

    def test_jaccard(self, tmp_path):
        from repro.engine.queries import jaccard_from_summary

        manager = make_manager(tmp_path, FakeClock())
        planner = QueryPlanner(manager)
        keys, weights = batch(0, n=40)
        manager.ingest("web", keys, weights)
        offline = offline_engine([(keys, weights)])
        got = planner.jaccard("web", ("h1", "h2"))
        assert got["estimate"] == jaccard_from_summary(
            offline.summary, ("h1", "h2"), "l"
        )
        assert planner.jaccard("web", ("h1", "h2"))["cached"]

    def test_no_data_raises_lookup(self, tmp_path):
        planner = QueryPlanner(make_manager(tmp_path, FakeClock()))
        with pytest.raises(LookupError, match="no data for namespace"):
            planner.estimate("web", "max", ("h1", "h2"))

    def test_unknown_namespace_raises_keyerror(self, tmp_path):
        planner = QueryPlanner(make_manager(tmp_path, FakeClock()))
        with pytest.raises(KeyError, match="unknown namespace"):
            planner.estimate("ghost", "max", ("h1", "h2"))

    def test_invalid_function_and_estimator(self, tmp_path):
        planner = QueryPlanner(make_manager(tmp_path, FakeClock()))
        with pytest.raises(ValueError, match="unknown function"):
            planner.estimate("web", "median", ("h1",))
        with pytest.raises(ValueError, match="unknown estimator"):
            planner.estimate("web", "max", ("h1",), estimator="magic")
