"""Unit tests for the temporal query primitives and the scaling transform.

Covers :mod:`repro.service.temporal` (duration parsing, window
resolution, decay factors) and the ``scaled()`` transform on sketches and
bundles that makes time-decayed weights exact under merge.
"""

from __future__ import annotations

import math
from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.ranks.families import ExponentialRanks, IppsRanks
from repro.ranks.hashing import KeyHasher
from repro.sampling.bottomk import BottomKStreamSampler
from repro.service.config import NamespaceConfig
from repro.service.temporal import (
    MIN_DECAY_FACTOR,
    decay_factor,
    format_duration,
    parse_duration,
    resolve_windows,
)

UTC = timezone.utc


def utc(*args) -> datetime:
    return datetime(*args, tzinfo=UTC)


class TestParseDuration:
    @pytest.mark.parametrize("spec,expect", [
        ("90s", 90.0), ("15m", 900.0), ("1.5h", 5400.0), ("2d", 172800.0),
        ("45", 45.0), (45, 45.0), (0.5, 0.5), ("  10 m ", 600.0),
    ])
    def test_accepts(self, spec, expect):
        assert parse_duration(spec) == expect

    @pytest.mark.parametrize("spec", [
        "", "m", "-5m", "5w", "nan", "inf", 0, -1.0, float("nan"),
        float("inf"), True,
    ])
    def test_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_duration(spec)

    @pytest.mark.parametrize("seconds,expect", [
        (900.0, "15m"), (5400.0, "90m"), (86400.0, "1d"), (90.0, "90s"),
        (0.5, "0.5s"),
    ])
    def test_format_round_trips(self, seconds, expect):
        assert format_duration(seconds) == expect
        assert parse_duration(expect) == seconds


class TestResolveWindows:
    def test_tumbling_covers_span_without_overlap(self):
        windows = resolve_windows(
            utc(2026, 7, 28, 12, 0), utc(2026, 7, 28, 12, 5), 60.0
        )
        assert len(windows) == 5
        for (_, prev_end), (start, _) in zip(windows, windows[1:]):
            assert start == prev_end  # no gap, no overlap
        assert windows[0][1] > utc(2026, 7, 28, 12, 0)
        assert windows[-1][1] >= utc(2026, 7, 28, 12, 5)

    def test_sliding_windows_step_by_step(self):
        windows = resolve_windows(
            utc(2026, 7, 28, 12, 0), utc(2026, 7, 28, 12, 10), 300.0, 60.0
        )
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert (e2 - e1).total_seconds() == 60.0
            assert (e1 - s1).total_seconds() == 300.0
        # every window intersects the data span
        assert all(e > utc(2026, 7, 28, 12, 0) for _, e in windows)
        assert all(s < utc(2026, 7, 28, 12, 10) for s, _ in windows)

    def test_ends_are_step_aligned(self):
        # Data starting mid-step still yields windows on the step grid —
        # the series is a stable function of the data, not of the caller.
        windows = resolve_windows(
            utc(2026, 7, 28, 12, 0, 37), utc(2026, 7, 28, 12, 3, 2),
            120.0, 60.0,
        )
        for _start, end in windows:
            assert end.timestamp() % 60.0 == 0.0

    def test_anchor_pins_last_end(self):
        anchor = utc(2026, 7, 28, 12, 4, 30)
        windows = resolve_windows(
            utc(2026, 7, 28, 12, 0), utc(2026, 7, 28, 12, 4), 120.0, 60.0,
            anchor=anchor,
        )
        assert windows[-1][1] == anchor
        for _start, end in windows:  # off-grid anchor shifts the series
            assert end.timestamp() % 60.0 == 30.0

    def test_step_exceeding_window_is_rejected(self):
        with pytest.raises(ValueError, match="must not exceed"):
            resolve_windows(utc(2026, 1, 1), utc(2026, 1, 2), 60.0, 120.0)

    def test_empty_span_yields_no_windows(self):
        t = utc(2026, 7, 28, 12, 0)
        assert resolve_windows(t, t, 60.0) == []

    @settings(deadline=None, max_examples=50)
    @given(
        span=st.floats(min_value=1.0, max_value=86_400.0),
        window=st.floats(min_value=1.0, max_value=3_600.0),
        ratio=st.floats(min_value=0.05, max_value=1.0),
        offset=st.floats(min_value=0.0, max_value=86_400.0),
    )
    def test_every_instant_is_covered(self, span, window, ratio, offset):
        """No instant of the data span falls outside every window."""
        lo = 1_767_225_600.0 + offset
        hi = lo + span
        # floor the step so one example never resolves millions of windows
        step = max(window * ratio, span / 2000.0, 1e-3)
        step = min(step, window)
        windows = resolve_windows(lo, hi, window, step)
        assert windows, "non-empty span must resolve to windows"
        starts = [s.timestamp() for s, _ in windows]
        ends = [e.timestamp() for _, e in windows]
        assert min(starts) <= lo + 1e-6
        assert max(ends) >= hi - 1e-6
        # consecutive windows never leave a gap
        for (_, e1), (s2, _) in zip(windows, windows[1:]):
            assert s2 <= e1


class TestDecayFactor:
    def test_half_life_halves(self):
        t0 = utc(2026, 7, 28, 12, 0)
        assert decay_factor(t0, t0, 3600.0) == 1.0
        one_hl = decay_factor(t0, utc(2026, 7, 28, 13, 0), 3600.0)
        two_hl = decay_factor(t0, utc(2026, 7, 28, 14, 0), 3600.0)
        assert one_hl == 0.5 and two_hl == 0.25

    def test_future_buckets_boost(self):
        t0 = utc(2026, 7, 28, 12, 0)
        assert decay_factor(utc(2026, 7, 28, 13, 0), t0, 3600.0) == 2.0

    def test_extreme_ages_clamp(self):
        t0 = 0.0
        ancient = decay_factor(t0, 1e13, 1.0)
        assert ancient == MIN_DECAY_FACTOR
        future = decay_factor(1e13, t0, 1.0)
        assert future == 1.0 / MIN_DECAY_FACTOR
        assert math.isfinite(1.0 / ancient)  # rank/f can never overflow

    @pytest.mark.parametrize("hl", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_half_life(self, hl):
        with pytest.raises(ValueError):
            decay_factor(0.0, 1.0, hl)


NS = NamespaceConfig("web", ("h1", "h2"), k=8, n_shards=2, salt=13)

_weights = st.floats(
    min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False
)


def _sketch(keys, weights, family="exp", k=4):
    families = {"exp": ExponentialRanks(), "ipps": IppsRanks()}
    sampler = BottomKStreamSampler(
        k=k, family=families[family], hasher=KeyHasher(5)
    )
    for key, weight in zip(keys, weights):
        sampler.process(key, weight)
    return sampler.sketch()


class TestScaledSketches:
    @pytest.mark.parametrize("family", ["exp", "ipps"])
    def test_scaled_preserves_membership_and_order(self, family):
        rng = np.random.default_rng(7)
        sketch = _sketch(range(20), rng.pareto(1.3, 20) + 0.1, family)
        scaled = sketch.scaled(0.25)
        assert list(scaled.keys) == list(sketch.keys)
        np.testing.assert_array_equal(scaled.ranks, sketch.ranks / 0.25)
        np.testing.assert_array_equal(scaled.weights, sketch.weights * 0.25)
        assert scaled.kth_rank == sketch.kth_rank / 0.25
        assert scaled.threshold == sketch.threshold / 0.25

    def test_scaled_merge_commutes(self):
        """scale-then-merge == merge-then-scale, bit for bit."""
        rng = np.random.default_rng(11)
        a = _sketch(range(0, 15), rng.pareto(1.3, 15) + 0.1)
        b = _sketch(range(100, 115), rng.pareto(1.3, 15) + 0.1)
        lhs = a.scaled(0.5).merge(b.scaled(0.5))
        rhs = a.merge(b).scaled(0.5)
        np.testing.assert_array_equal(lhs.ranks, rhs.ranks)
        np.testing.assert_array_equal(lhs.weights, rhs.weights)
        assert list(lhs.keys) == list(rhs.keys)
        assert lhs.threshold == rhs.threshold

    @pytest.mark.parametrize("factor", [0.0, -1.0, float("nan"),
                                        float("inf")])
    def test_invalid_factor(self, factor):
        sketch = _sketch(range(5), [1.0] * 5)
        with pytest.raises(ValueError):
            sketch.scaled(factor)

    def test_bundle_scaled_identity_shortcut(self):
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi([1, 2, 3], {
            "h1": np.array([1.0, 2.0, 3.0]),
            "h2": np.array([3.0, 2.0, 1.0]),
        })
        bundle = summarizer.sketch_bundle()
        assert bundle.scaled(1.0) is bundle
        assert bundle.scaled(0.5) is not bundle

    def test_exact_when_sketch_holds_everything(self):
        """With k >= n the sample is the population: sums are exact, so a
        scaled bundle's estimates equal the directly scaled sums."""
        keys = list(range(5))
        w1 = [1.5, 2.0, 0.25, 4.0, 8.0]
        w2 = [0.5, 1.0, 3.0, 2.0, 1.0]
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi(
            keys, {"h1": np.asarray(w1), "h2": np.asarray(w2)}
        )
        factor = 0.125  # power of two: w * factor is exact per value
        engine = QueryEngine.from_bundles(
            [summarizer.sketch_bundle()], scales=[factor]
        )
        spec = AggregationSpec("max", ("h1", "h2"))
        expect = sum(max(a * factor, b * factor) for a, b in zip(w1, w2))
        assert engine.estimate(spec) == pytest.approx(expect, rel=1e-12)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(1, 12),
        factor=st.sampled_from([0.5, 0.25, 2.0, 0.125]),
        seed=st.integers(0, 2**31),
    )
    def test_from_bundles_scales_matches_manual_scaling(
        self, n, factor, seed
    ):
        rng = np.random.default_rng(seed)
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi(list(range(n)), {
            "h1": rng.pareto(1.3, n) + 0.01,
            "h2": rng.pareto(1.5, n) + 0.01,
        })
        bundle = summarizer.sketch_bundle()
        spec = AggregationSpec("l1", ("h1", "h2"))
        via_scales = QueryEngine.from_bundles([bundle], scales=[factor])
        via_method = QueryEngine.from_bundles([bundle.scaled(factor)])
        assert (
            via_scales.estimate(spec) == via_method.estimate(spec)
        )

    def test_from_bundles_scales_length_mismatch(self):
        summarizer = NS.make_summarizer()
        summarizer.ingest_multi([1], {
            "h1": np.array([1.0]), "h2": np.array([1.0]),
        })
        bundle = summarizer.sketch_bundle()
        with pytest.raises(ValueError):
            QueryEngine.from_bundles([bundle], scales=[0.5, 0.5])
