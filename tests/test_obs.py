"""Unit tests for the observability subsystem (repro.obs).

Metrics: bucket boundary math, overflow behaviour, quantile derivation,
registry get-or-create semantics, exposition round-trip through the
bundled Prometheus text parser, and thread-safety of counters and
histograms under concurrent writers.

Tracing: deterministic splitmix64 ID streams under a fixed seed, header
format/parse round-trips, contextvar parent propagation (including
across an executor-thread boundary via ``bind_parent``), ring-buffer
bounds, error marking, and the JSONL sink.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    TRACE_HEADER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    bind_parent,
    current_span,
    current_trace_header,
    default_registry,
    default_tracer,
    format_trace_header,
    parse_prometheus_text,
    parse_trace_header,
    quantile_from_buckets,
)


class TestDefaultBuckets:
    def test_log_spaced_four_per_decade(self):
        edges = DEFAULT_LATENCY_BUCKETS
        assert len(edges) == 24
        assert edges[0] == pytest.approx(1e-4)
        assert edges[4] == pytest.approx(1e-3)
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert all(r == pytest.approx(10 ** 0.25, rel=1e-6) for r in ratios)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total", "help")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labelled_children_are_independent(self):
        counter = Counter("c_total", "help", labelnames=("path",))
        counter.inc(path="/query")
        counter.inc(3, path="/ingest")
        assert counter.value(path="/query") == 1
        assert counter.value(path="/ingest") == 3

    def test_label_mismatch_rejected(self):
        counter = Counter("c_total", "help", labelnames=("path",))
        with pytest.raises(ValueError, match="do not match"):
            counter.inc(route="/query")
        with pytest.raises(ValueError, match="use .labels"):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13

    def test_callback_gauge_reads_at_scrape_time(self):
        box = {"depth": 0}
        gauge = Gauge("g", "help", callback=lambda: box["depth"])
        assert gauge.value() == 0
        box["depth"] = 7
        assert gauge.value() == 7

    def test_callback_failure_renders_nan_not_raise(self):
        def broken():
            raise RuntimeError("source closed mid-shutdown")

        gauge = Gauge("g", "help", callback=broken)
        assert math.isnan(gauge.value())

    def test_callback_with_labels_rejected(self):
        with pytest.raises(ValueError, match="cannot declare labels"):
            Gauge("g", "help", labelnames=("x",), callback=lambda: 0)


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus `le` semantics: a value exactly on an upper edge
        # counts in that bucket, not the next.
        hist = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(2.0000001)
        child = hist._default_child()
        counts, total, total_sum = child.snapshot()
        assert counts == [1, 1, 1, 0]
        assert total == 3
        assert total_sum == pytest.approx(5.0000001)

    def test_overflow_bucket(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0))
        hist.observe(100.0)
        counts, total, _ = hist._default_child().snapshot()
        assert counts == [0, 0, 1]
        assert total == 1

    def test_trailing_inf_bucket_is_implicit(self):
        hist = Histogram("h", "help", buckets=(1.0, 2.0, math.inf))
        assert hist.buckets == (1.0, 2.0)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", "help", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", "help", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", "help", buckets=(2.0, 1.0))


class TestQuantiles:
    def test_quantile_log_interpolates_within_bucket(self):
        # 100 observations all in bucket (1.0, 10.0]: p50 sits at the
        # log-midpoint of the bucket, not the arithmetic midpoint.
        uppers = (1.0, 10.0)
        counts = [0, 100, 0]
        p50 = quantile_from_buckets(uppers, counts, 100, 0.5)
        assert p50 == pytest.approx(math.sqrt(10.0))

    def test_quantile_first_bucket_returns_edge(self):
        uppers = (1.0, 2.0)
        assert quantile_from_buckets(uppers, [10, 0, 0], 10, 0.5) == 1.0

    def test_quantile_overflow_clamps_to_last_edge(self):
        uppers = (1.0, 2.0)
        assert quantile_from_buckets(uppers, [0, 0, 5], 5, 0.99) == 2.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(quantile_from_buckets((1.0,), [0, 0], 0, 0.5))

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            quantile_from_buckets((1.0,), [1, 0], 1, 1.5)

    def test_histogram_quantile_spread(self):
        hist = Histogram("h", "help", buckets=DEFAULT_LATENCY_BUCKETS)
        for _ in range(90):
            hist.observe(0.001)
        for _ in range(10):
            hist.observe(1.0)
        p50 = hist.quantile(0.5)
        p99 = hist.quantile(0.99)
        assert p50 <= 0.001 * 10 ** 0.25  # within the 1ms bucket
        assert 0.5 <= p99 <= 1.01
        assert p50 < p99


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        again = registry.counter("c_total", "other help ignored")
        assert first is again
        assert registry.get("c_total") is first
        assert registry.get("missing") is None

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help")
        with pytest.raises(ValueError, match="already registered as"):
            registry.gauge("x", "help")

    def test_labelname_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "help", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered with"):
            registry.counter("x", "help", labelnames=("b",))

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("2bad", "help")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("ok", "help", labelnames=("bad-label",))

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


class TestExpositionRoundTrip:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter(
            "req_total", "requests", labelnames=("path", "status")
        ).inc(3, path="/query", status="200")
        registry.gauge("depth", "queue depth").set(4)
        hist = registry.histogram("lat_seconds", "latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render()
        assert "# HELP req_total requests" in text
        assert "# TYPE lat_seconds histogram" in text
        samples = parse_prometheus_text(text)
        assert samples[
            ("req_total", (("path", "/query"), ("status", "200")))
        ] == 3
        assert samples[("depth", ())] == 4
        assert samples[("lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 2
        assert samples[("lat_seconds_count", ())] == 2
        assert samples[("lat_seconds_sum", ())] == pytest.approx(5.05)

    def test_label_value_escaping_round_trips(self):
        registry = MetricsRegistry()
        weird = 'a"b\\c\nd'
        registry.counter("c_total", "", labelnames=("p",)).inc(p=weird)
        samples = parse_prometheus_text(registry.render())
        assert samples[("c_total", (("p", weird),))] == 1

    def test_special_values_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("g_inf", "").set(math.inf)
        registry.gauge("g_nan", "").set(math.nan)
        samples = parse_prometheus_text(registry.render())
        assert samples[("g_inf", ())] == math.inf
        assert math.isnan(samples[("g_nan", ())])

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="invalid Prometheus"):
            parse_prometheus_text("not a sample line at all ! ! !")

    def test_callback_gauge_appears_in_scrape_without_touch(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "", callback=lambda: 9)
        samples = parse_prometheus_text(registry.render())
        assert samples[("depth", ())] == 9


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", labelnames=("worker",))
        hist = registry.histogram("h_seconds", "", buckets=(0.5, 1.0))
        n_threads, n_iter = 8, 2_000

        def hammer(worker: int) -> None:
            for i in range(n_iter):
                counter.inc(worker=str(worker % 2))
                hist.observe((i % 3) * 0.4)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="0") == n_threads // 2 * n_iter
        assert counter.value(worker="1") == n_threads // 2 * n_iter
        counts, total, _ = hist._default_child().snapshot()
        assert total == n_threads * n_iter
        assert sum(counts) == total


class TestTraceIds:
    def test_fixed_seed_gives_reproducible_id_stream(self):
        spans_a = [Tracer(seed=42).span(f"s{i}") for i in range(4)]
        first = Tracer(seed=42)
        second = Tracer(seed=42)
        ids_first = [
            (s.trace_id, s.span_id)
            for s in (first.span(f"s{i}") for i in range(4))
        ]
        ids_second = [
            (s.trace_id, s.span_id)
            for s in (second.span(f"s{i}") for i in range(4))
        ]
        assert ids_first == ids_second
        assert len({t for t, _ in ids_first}) == 4  # distinct roots
        del spans_a

    def test_different_seeds_diverge(self):
        a = Tracer(seed=1).span("x")
        b = Tracer(seed=2).span("x")
        assert (a.trace_id, a.span_id) != (b.trace_id, b.span_id)

    def test_ids_never_zero(self):
        tracer = Tracer(seed=7)
        for _ in range(100):
            span = tracer.span("x")
            assert span.trace_id != 0 and span.span_id != 0


class TestTraceHeader:
    def test_format_parse_round_trip(self):
        span = Tracer(seed=3).span("x")
        header = format_trace_header(span)
        assert parse_trace_header(header) == (span.trace_id, span.span_id)
        assert len(header) == 33 and header[16] == "-"

    @pytest.mark.parametrize("bad", [
        None, "", "deadbeef", "xyz-123", "0-0", "-", "12-", "-12",
        "ffffffffffffffffff-1",  # > 64 bits
    ])
    def test_malformed_headers_parse_to_none(self, bad):
        assert parse_trace_header(bad) is None

    def test_header_constant(self):
        assert TRACE_HEADER == "X-Repro-Trace"


class TestSpans:
    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer(seed=5)
        with tracer.span("root") as root:
            assert current_span() is root
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        assert current_span() is None

    def test_begin_request_joins_remote_trace(self):
        upstream = Tracer(seed=1)
        downstream = Tracer(seed=2)
        with upstream.span("caller") as caller:
            header = caller.header()
        span = downstream.begin_request("GET /bundle", header=header)
        assert span.trace_id == caller.trace_id
        assert span.parent_id == caller.span_id

    def test_begin_request_bad_header_starts_fresh_root(self):
        tracer = Tracer(seed=2)
        span = tracer.begin_request("GET /query", header="garbage")
        assert span.parent_id is None and span.trace_id != 0

    def test_exception_marks_error_and_reraises(self):
        tracer = Tracer(seed=9)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("work"):
                raise RuntimeError("boom")
        row = tracer.recent(1)[0]
        assert row["status"] == "error" and row["error"] == "boom"

    def test_annotate_and_fail(self):
        tracer = Tracer(seed=9)
        with tracer.span("work", namespace="web") as span:
            span.annotate(outcome="hit")
            span.fail("soft failure")
        row = tracer.recent(1)[0]
        assert row["tags"] == {"namespace": "web", "outcome": "hit"}
        assert row["status"] == "error"
        assert row["error"] == "soft failure"

    def test_current_trace_header_tracks_active_span(self):
        tracer = Tracer(seed=4)
        assert current_trace_header() is None
        with tracer.span("root") as span:
            assert current_trace_header() == span.header()
        assert current_trace_header() is None

    def test_bind_parent_carries_span_across_threads(self):
        tracer = Tracer(seed=6)
        seen = {}

        def work():
            seen["span"] = current_span()
            return 42

        with tracer.span("request") as span:
            thread = threading.Thread(
                target=lambda: seen.setdefault(
                    "result", bind_parent(span, work)
                )
            )
            thread.start()
            thread.join()
        assert seen["span"] is span
        assert seen["result"] == 42
        assert current_span() is None


class TestTracerRing:
    def test_ring_is_bounded_and_newest_first(self):
        tracer = Tracer(seed=1, capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [row["name"] for row in tracer.recent(10)]
        assert names == ["s4", "s3", "s2"]
        assert [row["name"] for row in tracer.recent(1)] == ["s4"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(seed=1, enabled=False)
        with tracer.span("invisible") as span:
            assert not span.recording
            assert current_trace_header() is None
        assert tracer.recent() == []

    def test_jsonl_log_sink(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(seed=11, log_path=log)
        with tracer.span("a", k="v"):
            pass
        with tracer.span("b"):
            pass
        tracer.close()
        rows = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert [row["name"] for row in rows] == ["a", "b"]
        assert rows[0]["tags"] == {"k": "v"}
        assert tracer.dropped == 0

    def test_log_write_failure_counts_dropped(self, tmp_path):
        tracer = Tracer(seed=11, log_path=tmp_path / "missing" / "t.jsonl")
        with tracer.span("a"):
            pass
        assert tracer.dropped == 1  # parent dir absent: OSError swallowed
        assert len(tracer.recent()) == 1  # the ring still got the span

    def test_default_tracer_is_singleton(self):
        assert default_tracer() is default_tracer()
