"""Tests for the dispersed s-set / l-set / L1 estimators (Section 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec, key_values
from repro.core.summary import build_bottomk_summary
from repro.estimators.dispersed import (
    dispersed_estimator,
    independent_min_estimator,
    l1_estimator,
    lset_estimator,
    max_estimator,
    sset_estimator,
)
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import ExponentialRanks, IppsRanks

from tests.conftest import make_random_dataset

FAMILY = IppsRanks()


def summary_for(dataset, method="shared_seed", k=5, seed=0, family=FAMILY):
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(family, dataset.weights, rng)
    return build_bottomk_summary(
        dataset.weights, draw, k, dataset.assignments, family, mode="dispersed"
    )


def mean_total(dataset, estimate, method="shared_seed", runs=3000, k=5,
               family=FAMILY):
    total = 0.0
    for run in range(runs):
        total += estimate(summary_for(dataset, method, k, run, family)).total()
    return total / runs


class TestUnbiasedness:
    @pytest.mark.parametrize("family", [IppsRanks(), ExponentialRanks()],
                             ids=["ipps", "exp"])
    def test_max(self, family):
        dataset = make_random_dataset(n_keys=20, seed=21)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("max", names)).sum())
        mean = mean_total(
            dataset, lambda s: max_estimator(s, names), family=family
        )
        assert mean == pytest.approx(exact, rel=0.12)

    @pytest.mark.parametrize("variant", ["s", "l"])
    def test_min(self, variant):
        dataset = make_random_dataset(n_keys=20, seed=22)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("min", names)
        exact = float(key_values(dataset, spec).sum())
        builder = sset_estimator if variant == "s" else lset_estimator
        mean = mean_total(dataset, lambda s: builder(s, spec))
        assert mean == pytest.approx(exact, rel=0.15)

    @pytest.mark.parametrize("variant", ["s", "l"])
    def test_l1(self, variant):
        dataset = make_random_dataset(n_keys=20, seed=23)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("l1", names)).sum())
        mean = mean_total(dataset, lambda s: l1_estimator(s, names, variant))
        assert mean == pytest.approx(exact, rel=0.15)

    def test_lth_largest(self):
        dataset = make_random_dataset(n_keys=20, seed=24)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("lth_largest", names, ell=2)
        exact = float(key_values(dataset, spec).sum())
        for builder in (sset_estimator, lset_estimator):
            mean = mean_total(dataset, lambda s: builder(s, spec))
            assert mean == pytest.approx(exact, rel=0.15)

    def test_independent_min(self):
        dataset = make_random_dataset(n_keys=15, n_assignments=2, seed=25,
                                      churn=0.0)
        names = tuple(dataset.assignments)
        exact = float(key_values(dataset, AggregationSpec("min", names)).sum())
        mean = mean_total(
            dataset,
            lambda s: independent_min_estimator(s, names),
            method="independent",
            runs=8000,
            k=8,
        )
        assert mean == pytest.approx(exact, rel=0.2)

    def test_independent_min_sset_variant(self):
        dataset = make_random_dataset(n_keys=15, n_assignments=2, seed=26,
                                      churn=0.0)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("min", names)
        exact = float(key_values(dataset, spec).sum())
        mean = mean_total(
            dataset,
            lambda s: sset_estimator(s, spec),
            method="independent",
            runs=8000,
            k=8,
        )
        assert mean == pytest.approx(exact, rel=0.2)


class TestL1Properties:
    def test_per_key_nonnegative(self):
        """Lemma 7.5: a^L1(i) >= 0 for consistent IPPS/EXP ranks."""
        dataset = make_random_dataset(n_keys=40, seed=27)
        names = tuple(dataset.assignments)
        for family in (IppsRanks(), ExponentialRanks()):
            for run in range(200):
                summary = summary_for(dataset, "shared_seed", 6, run, family)
                for variant in ("s", "l"):
                    adjusted = l1_estimator(summary, names, variant)
                    assert np.all(adjusted.values >= -1e-9)

    def test_min_selection_implies_max_selection(self):
        dataset = make_random_dataset(n_keys=40, seed=28)
        names = tuple(dataset.assignments)
        for run in range(100):
            summary = summary_for(dataset, seed=run)
            a_max = max_estimator(summary, names)
            a_min = lset_estimator(summary, AggregationSpec("min", names))
            assert set(a_min.positions) <= set(a_max.positions)

    def test_l1_via_dispatcher(self):
        dataset = make_random_dataset(seed=29)
        names = tuple(dataset.assignments)
        summary = summary_for(dataset)
        spec = AggregationSpec("l1", names)
        direct = l1_estimator(summary, names, "l")
        routed = dispersed_estimator(summary, spec, variant="l")
        np.testing.assert_allclose(direct.values, routed.values)

    def test_l1_rejected_by_raw_templates(self):
        dataset = make_random_dataset(seed=29)
        summary = summary_for(dataset)
        spec = AggregationSpec("l1", tuple(dataset.assignments))
        with pytest.raises(ValueError, match="not top-ℓ dependent"):
            sset_estimator(summary, spec)
        with pytest.raises(ValueError, match="not top-ℓ dependent"):
            lset_estimator(summary, spec)


class TestSelectionStructure:
    def test_sset_selection_subset_of_lset(self):
        """S*_s ⊆ S*_l (Lemma 5.1 setup): l-set keys include s-set keys."""
        dataset = make_random_dataset(n_keys=40, seed=30)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("min", names)
        for run in range(100):
            summary = summary_for(dataset, seed=run)
            s_keys = set(sset_estimator(summary, spec).positions)
            l_keys = set(lset_estimator(summary, spec).positions)
            assert s_keys <= l_keys

    def test_max_sset_equals_lset(self):
        """At ℓ=1 the two templates coincide (Section 7.2)."""
        dataset = make_random_dataset(n_keys=40, seed=31)
        names = tuple(dataset.assignments)
        spec = AggregationSpec("max", names)
        for run in range(50):
            summary = summary_for(dataset, seed=run)
            a_s = sset_estimator(summary, spec)
            a_l = lset_estimator(summary, spec)
            assert a_s.positions.tolist() == a_l.positions.tolist()
            np.testing.assert_allclose(a_s.values, a_l.values)

    def test_recovered_weights_match_truth(self):
        """f values used by the estimator equal the true top-ℓ weights."""
        dataset = make_random_dataset(n_keys=40, seed=32)
        names = tuple(dataset.assignments)
        true_max = key_values(dataset, AggregationSpec("max", names))
        for run in range(50):
            summary = summary_for(dataset, seed=run)
            adjusted = max_estimator(summary, names)
            # a(i) = w_max(i)/p with p <= 1  =>  a(i) >= w_max(i)
            assert np.all(adjusted.values >= true_max[adjusted.positions] - 1e-9)

    def test_adjusted_weights_nonnegative(self):
        dataset = make_random_dataset(seed=33)
        names = tuple(dataset.assignments)
        for run in range(50):
            summary = summary_for(dataset, seed=run)
            for spec in (
                AggregationSpec("max", names),
                AggregationSpec("min", names),
                AggregationSpec("lth_largest", names, ell=2),
            ):
                for builder in (sset_estimator, lset_estimator):
                    assert np.all(builder(summary, spec).values >= 0.0)


class TestValidation:
    def test_sset_independent_only_min(self):
        dataset = make_random_dataset(seed=34)
        summary = summary_for(dataset, method="independent")
        with pytest.raises(ValueError, match="min-dependence"):
            sset_estimator(
                summary, AggregationSpec("max", tuple(dataset.assignments))
            )

    def test_independent_min_rejects_consistent_summary(self):
        dataset = make_random_dataset(seed=34)
        summary = summary_for(dataset, method="shared_seed")
        with pytest.raises(ValueError, match="independent"):
            independent_min_estimator(summary, tuple(dataset.assignments))

    def test_lset_needs_seeds_for_middle_ell(self):
        from repro.ranks.families import ExponentialRanks

        dataset = make_random_dataset(seed=34)
        family = ExponentialRanks()
        rng = np.random.default_rng(0)
        draw = get_rank_method("independent_differences").draw(
            family, dataset.weights, rng
        )
        summary = build_bottomk_summary(
            dataset.weights, draw, 5, dataset.assignments, family,
            mode="dispersed",
        )
        spec = AggregationSpec("lth_largest", tuple(dataset.assignments), ell=2)
        with pytest.raises(ValueError, match="seeds"):
            lset_estimator(summary, spec)

    def test_dispatcher_validates_variant(self):
        dataset = make_random_dataset(seed=34)
        summary = summary_for(dataset)
        with pytest.raises(ValueError, match="variant"):
            dispersed_estimator(
                summary,
                AggregationSpec("max", tuple(dataset.assignments)),
                variant="x",
            )

    def test_l1_validates_min_variant(self):
        dataset = make_random_dataset(seed=34)
        summary = summary_for(dataset)
        with pytest.raises(ValueError, match="min_variant"):
            l1_estimator(summary, tuple(dataset.assignments), min_variant="q")
