"""Tests for key-wise aggregate functions and exact aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregates import (
    AggregationSpec,
    exact_aggregate,
    jaccard_similarity,
    key_values,
    lth_largest_weights,
    max_weights,
    min_weights,
    range_weights,
    single_weights,
)
from repro.core.predicates import key_in

from tests.conftest import FIG2_WEIGHTS


class TestKeyWiseFunctions:
    """Checked against the worked values printed in Figure 2 of the paper."""

    def test_max_over_w1_w2(self, fig2_dataset):
        np.testing.assert_array_equal(
            max_weights(fig2_dataset, ["w1", "w2"]), [20, 10, 12, 20, 10, 10]
        )

    def test_max_over_all(self, fig2_dataset):
        np.testing.assert_array_equal(
            max_weights(fig2_dataset), [20, 15, 15, 20, 15, 10]
        )

    def test_min_over_w1_w2(self, fig2_dataset):
        # The paper's Figure 2 prints w(min{1,2})(i4) = 0, but with
        # w1(i4) = 5, w2(i4) = 20 the minimum is 5 — confirmed by the
        # figure's own L1 row (max − L1 = 20 − 15 = 5).  Paper typo.
        np.testing.assert_array_equal(
            min_weights(fig2_dataset, ["w1", "w2"]), [15, 0, 10, 5, 0, 10]
        )

    def test_min_over_all(self, fig2_dataset):
        np.testing.assert_array_equal(
            min_weights(fig2_dataset), [10, 0, 10, 0, 0, 10]
        )

    def test_l1_w1_w2(self, fig2_dataset):
        np.testing.assert_array_equal(
            range_weights(fig2_dataset, ["w1", "w2"]), [5, 10, 2, 15, 10, 0]
        )

    def test_l1_w2_w3(self, fig2_dataset):
        np.testing.assert_array_equal(
            range_weights(fig2_dataset, ["w2", "w3"]), [10, 5, 3, 20, 15, 0]
        )

    def test_single(self, fig2_dataset):
        np.testing.assert_array_equal(
            single_weights(fig2_dataset, "w2"), FIG2_WEIGHTS[:, 1]
        )

    def test_lth_largest_medians(self, fig2_dataset):
        median = lth_largest_weights(fig2_dataset, 2)
        np.testing.assert_array_equal(median, [15, 10, 12, 5, 10, 10])

    def test_lth_largest_bounds(self, fig2_dataset):
        with pytest.raises(ValueError, match="between 1 and"):
            lth_largest_weights(fig2_dataset, 0)
        with pytest.raises(ValueError, match="between 1 and"):
            lth_largest_weights(fig2_dataset, 4)

    def test_lth_largest_extremes_match_min_max(self, fig2_dataset):
        np.testing.assert_array_equal(
            lth_largest_weights(fig2_dataset, 1), max_weights(fig2_dataset)
        )
        np.testing.assert_array_equal(
            lth_largest_weights(fig2_dataset, 3), min_weights(fig2_dataset)
        )


class TestAggregationSpec:
    def test_valid_specs(self):
        AggregationSpec("min", ("a", "b"))
        AggregationSpec("single", ("a",))
        AggregationSpec("lth_largest", ("a", "b", "c"), ell=2)

    def test_single_needs_exactly_one(self):
        with pytest.raises(ValueError, match="exactly one"):
            AggregationSpec("single", ("a", "b"))

    def test_lth_largest_needs_ell(self):
        with pytest.raises(ValueError, match="require ell"):
            AggregationSpec("lth_largest", ("a", "b"))

    def test_unknown_function(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            AggregationSpec("median", ("a",))

    def test_empty_assignments(self):
        with pytest.raises(ValueError, match="non-empty"):
            AggregationSpec("min", ())

    def test_dependence_ell(self):
        assert AggregationSpec("max", ("a", "b", "c")).dependence_ell == 1
        assert AggregationSpec("min", ("a", "b", "c")).dependence_ell == 3
        assert AggregationSpec("single", ("a",)).dependence_ell == 1
        assert (
            AggregationSpec("lth_largest", ("a", "b", "c"), ell=2).dependence_ell
            == 2
        )

    def test_l1_has_no_dependence_ell(self):
        with pytest.raises(ValueError, match="not a top-ℓ"):
            AggregationSpec("l1", ("a", "b")).dependence_ell


class TestExactAggregate:
    def test_paper_max_dominance_example(self, fig2_dataset):
        """Paper: max over even keys and all assignments = 15+20+10 = 45."""
        spec = AggregationSpec(
            "max",
            ("w1", "w2", "w3"),
            predicate=key_in({"i2", "i4", "i6"}),
        )
        assert exact_aggregate(fig2_dataset, spec) == 45.0

    def test_paper_l1_example(self, fig2_dataset):
        """Paper: L1 between w2, w3 over keys i1..i3 = 10+5+3 = 18."""
        spec = AggregationSpec(
            "l1", ("w2", "w3"), predicate=key_in({"i1", "i2", "i3"})
        )
        assert exact_aggregate(fig2_dataset, spec) == 18.0

    def test_key_values_matches_spec_routing(self, fig2_dataset):
        for spec in [
            AggregationSpec("single", ("w1",)),
            AggregationSpec("min", ("w1", "w3")),
            AggregationSpec("max", ("w1", "w3")),
            AggregationSpec("l1", ("w1", "w3")),
            AggregationSpec("lth_largest", ("w1", "w2", "w3"), ell=2),
        ]:
            values = key_values(fig2_dataset, spec)
            assert values.shape == (6,)
            assert exact_aggregate(fig2_dataset, spec) == pytest.approx(
                values.sum()
            )


class TestJaccard:
    def test_identical_assignments_give_one(self):
        from repro.core.dataset import MultiAssignmentDataset

        ds = MultiAssignmentDataset(
            ["a", "b"], ["x", "y"], [[2.0, 2.0], [3.0, 3.0]]
        )
        assert jaccard_similarity(ds, "x", "y") == 1.0

    def test_disjoint_supports_give_zero(self):
        from repro.core.dataset import MultiAssignmentDataset

        ds = MultiAssignmentDataset(
            ["a", "b"], ["x", "y"], [[2.0, 0.0], [0.0, 3.0]]
        )
        assert jaccard_similarity(ds, "x", "y") == 0.0

    def test_value_on_fig2(self, fig2_dataset):
        # Σ min(w1,w2) = 40, Σ max(w1,w2) = 82 (the Figure 1 weighted set
        # is exactly w^max{1,2} of Figure 2, total 82).
        assert jaccard_similarity(fig2_dataset, "w1", "w2") == pytest.approx(
            40.0 / 82.0
        )

    def test_all_zero_returns_zero(self):
        from repro.core.dataset import MultiAssignmentDataset

        ds = MultiAssignmentDataset(["a"], ["x", "y"], [[0.0, 0.0]])
        assert jaccard_similarity(ds, "x", "y") == 0.0
