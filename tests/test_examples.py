"""Smoke-run every example script (guards against example rot)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys, monkeypatch):
    # Examples are plain scripts; execute them as __main__.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
    assert "Traceback" not in out


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "network_monitoring", "stock_similarity",
            "movie_trends"} <= names
