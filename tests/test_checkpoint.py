"""Checkpoint/resume: interrupted ingestion is invisible in the output.

The acceptance property pinned here: checkpoint/resume of a
ShardedSummarizer yields summaries **bit-identical** to an uninterrupted
run — same keys, same rank bits, same thresholds, same seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.sharded import ShardedSummarizer
from repro.ranks.families import ExponentialRanks, IppsRanks
from repro.ranks.hashing import KeyHasher
from repro.store import SummaryStore, load_checkpoint, save_checkpoint
from repro.store.codec import SummarizerCheckpoint, decode, encode


def make_events(n=4000, n_keys=800, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, n)
    weights = rng.pareto(1.2, n) + 0.01
    return keys, weights


def feed(engine, assignment, keys, weights, batch=512):
    for lo in range(0, len(keys), batch):
        engine.ingest(assignment, keys[lo : lo + batch],
                      weights[lo : lo + batch])


@pytest.mark.parametrize("n_shards", [1, 3])
@pytest.mark.parametrize(
    "family", [IppsRanks(), ExponentialRanks()], ids=lambda f: f.name
)
def test_resume_is_bit_identical(tmp_path, n_shards, family):
    keys, weights = make_events()
    half = len(keys) // 2

    def fresh():
        return ShardedSummarizer(
            k=64, assignments=["h1", "h2"], n_shards=n_shards,
            family=family, hasher=KeyHasher(42),
        )

    uninterrupted = fresh()
    feed(uninterrupted, "h1", keys, weights)
    feed(uninterrupted, "h2", keys[::2], weights[::2] * 3.0)

    interrupted = fresh()
    feed(interrupted, "h1", keys[:half], weights[:half])
    path = tmp_path / "ingest.ckpt"
    interrupted.save_checkpoint(path)
    del interrupted  # the "crash"

    resumed = ShardedSummarizer.load_checkpoint(path)
    feed(resumed, "h1", keys[half:], weights[half:])
    feed(resumed, "h2", keys[::2], weights[::2] * 3.0)

    assert resumed.summary().equals(uninterrupted.summary())
    for name, sk in resumed.sketches().items():
        assert sk.equals(uninterrupted.sketches()[name])


def test_resume_with_string_and_tuple_keys(tmp_path):
    events = [(f"flow-{i % 37}", float(i % 11) + 0.5) for i in range(200)]
    events += [(("src", i % 13, "dst"), 1.25) for i in range(100)]

    def run(interrupt):
        engine = ShardedSummarizer(
            k=16, assignments=["a"], n_shards=2, hasher=KeyHasher(7)
        )
        if interrupt:
            engine.ingest_stream("a", events[:150])
            engine = decode(encode(engine.checkpoint_state())).restore()
            engine.ingest_stream("a", events[150:])
        else:
            engine.ingest_stream("a", events)
        return engine.summary()

    assert run(interrupt=True).equals(run(interrupt=False))


def test_checkpoint_into_store(tmp_path):
    keys, weights = make_events(n=600, n_keys=100)
    engine = ShardedSummarizer(
        k=8, assignments=["h1"], n_shards=2, hasher=KeyHasher(5)
    )
    feed(engine, "h1", keys, weights)
    store = SummaryStore(tmp_path)
    entry = store.write("flows", "20260728T1201", engine.checkpoint_state())
    assert entry.kind == "checkpoint"
    restored = store.load(entry).restore()
    assert restored.summary().equals(engine.summary())


def test_checkpoint_functions_and_type_guard(tmp_path):
    engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
    engine.ingest("a", np.arange(20), np.ones(20))
    path = tmp_path / "cp.cws"
    assert save_checkpoint(path, engine) == path.stat().st_size
    assert load_checkpoint(path).summary().equals(engine.summary())
    # also accepts an already-captured state
    save_checkpoint(path, engine.checkpoint_state())

    sketch_path = tmp_path / "sk.cws"
    from repro.store.codec import write_file

    write_file(sketch_path, engine.sketches()["a"])
    with pytest.raises(TypeError, match="SummarizerCheckpoint"):
        load_checkpoint(sketch_path)


def test_checkpoint_requires_plain_hasher():
    class FancyHasher(KeyHasher):
        pass

    engine = ShardedSummarizer(k=4, assignments=["a"], hasher=FancyHasher(1))
    with pytest.raises(ValueError, match="KeyHasher"):
        engine.checkpoint_state()
    # a bundle would store a salt that cannot reproduce the custom hashing
    with pytest.raises(ValueError, match="KeyHasher"):
        engine.sketch_bundle()


def test_checkpoint_state_validation():
    with pytest.raises(ValueError, match="missing"):
        SummarizerCheckpoint(
            k=2, assignments=["a"], n_shards=1, family=IppsRanks(),
            hasher_salt=0, partition_salt=0, chunks={},
        )
    with pytest.raises(ValueError, match="n_shards"):
        SummarizerCheckpoint(
            k=2, assignments=["a"], n_shards=2, family=IppsRanks(),
            hasher_salt=0, partition_salt=0, chunks={"a": [[]]},
        )


def test_save_checkpoint_overwrite_is_atomic(tmp_path):
    """Re-checkpointing to the same path must stage + rename, never truncate."""
    engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
    engine.ingest("a", np.arange(20), np.ones(20))
    path = tmp_path / "cp.cws"
    engine.save_checkpoint(path)
    engine.ingest("a", np.arange(20, 40), np.ones(20))
    engine.save_checkpoint(path)  # overwrite in place
    assert load_checkpoint(path).summary().equals(engine.summary())
    strays = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert strays == []


def test_buffered_events_property():
    engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
    engine.ingest("a", np.arange(15), np.ones(15))
    assert engine.checkpoint_state().buffered_events == 15


class TestDefensiveAccessors:
    def test_sketches_returns_defensive_copies(self):
        engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
        engine.ingest("a", np.arange(50), np.arange(50, dtype=float) + 1.0)
        handed_out = engine.sketches()["a"]
        handed_out.weights[:] = -99.0
        handed_out.ranks[:] = 0.0
        handed_out.keys[:] = 0
        clean = engine.sketches()["a"]
        assert (clean.weights > 0).all()
        assert not clean.equals(handed_out)
        # the summary path reads the same internal cache and must be clean
        assert np.nanmax(engine.summary().weights) > 0

    def test_sketch_cache_invalidated_by_ingest(self):
        engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
        engine.ingest("a", np.arange(10), np.ones(10))
        before = engine.sketches()["a"]
        engine.ingest("a", np.arange(10, 20), np.full(10, 50.0))
        after = engine.sketches()["a"]
        assert not after.equals(before)  # heavy new keys displaced the old
        reference = ShardedSummarizer(
            k=4, assignments=["a"], hasher=KeyHasher(1)
        )
        reference.ingest("a", np.arange(20),
                         np.concatenate([np.ones(10), np.full(10, 50.0)]))
        assert after.equals(reference.sketches()["a"])

    def test_repeated_calls_share_cache(self):
        engine = ShardedSummarizer(k=4, assignments=["a"], hasher=KeyHasher(1))
        engine.ingest("a", np.arange(10), np.ones(10))
        assert engine._merged_sketches() is engine._merged_sketches()
