"""Property suite: vectorized kernels == reference estimators.

Every kernel in :mod:`repro.estimators.kernels` must produce adjusted
weights numerically identical (exact, or within 1e-9 relative) to the
retained per-spec reference implementations in
:mod:`repro.estimators.dispersed` / ``colocated`` / ``rank_conditioning`` /
``horvitz_thompson``, across rank families (EXP/IPPS), rank-assignment
methods, colocated/dispersed modes, and degenerate inputs (empty
summaries, single keys, subsets with no known weights, k ≥ n, Poisson
summaries with k = 0).

Where a reference estimator rejects a configuration (e.g. l-set without
seeds), the kernel must reject it too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.aggregates import AggregationSpec
from repro.core.summary import (
    build_bottomk_summary,
    build_poisson_summary,
    build_summary_from_sketches,
)
from repro.estimators import kernels
from repro.estimators.colocated import (
    colocated_estimator,
    generic_consistent_estimator,
)
from repro.estimators.dispersed import (
    l1_estimator,
    lset_estimator,
    sset_estimator,
)
from repro.estimators.horvitz_thompson import ht_from_summary
from repro.estimators.rank_conditioning import plain_rc_from_summary
from repro.ranks.assignments import get_rank_method
from repro.ranks.families import get_rank_family
from repro.sampling.bottomk import BottomKStreamSampler
from repro.sampling.poisson import calibrate_tau

MAX_KEYS = 18

weight_matrices = st.integers(1, 4).flatmap(
    lambda m: arrays(
        np.float64,
        st.tuples(st.integers(1, MAX_KEYS), st.just(m)),
        elements=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
    )
)
ks = st.integers(1, 8)
seeds = st.integers(0, 2**31)
families = st.sampled_from(["ipps", "exp"])
methods = st.sampled_from(["shared_seed", "independent"])
modes = st.sampled_from(["colocated", "dispersed"])


def dense_of(summary, adjusted) -> np.ndarray:
    """Scatter sparse AdjustedWeights onto the summary's union rows."""
    row_of = {int(p): r for r, p in enumerate(summary.positions)}
    out = np.zeros(summary.n_union)
    for pos, value in zip(adjusted.positions.tolist(), adjusted.values):
        out[row_of[pos]] += value
    return out


def assert_parity(summary, reference_call, kernel_call, label) -> None:
    """Reference and kernel agree: same values, or both reject."""
    try:
        reference = dense_of(summary, reference_call())
    except ValueError:
        with pytest.raises(ValueError):
            kernel_call()
        return
    dense = kernel_call()
    assert dense.shape == reference.shape
    np.testing.assert_allclose(
        dense, reference, rtol=1e-9, atol=1e-12,
        err_msg=f"kernel/reference mismatch for {label}",
    )


def build_summary(weights, k, seed, family_name, method, mode):
    family = get_rank_family(family_name)
    rng = np.random.default_rng(seed)
    draw = get_rank_method(method).draw(family, weights, rng)
    names = [f"w{b}" for b in range(weights.shape[1])]
    return build_bottomk_summary(weights, draw, k, names, family, mode=mode)


def all_specs(names):
    """Every aggregate spec family over full R, a sub-R, and singletons."""
    names = tuple(names)
    spec_list = [
        AggregationSpec("min", names),
        AggregationSpec("max", names),
        AggregationSpec("single", names[:1]),
    ]
    for ell in range(1, len(names) + 1):
        spec_list.append(AggregationSpec("lth_largest", names, ell=ell))
    if len(names) > 1:
        sub = names[: len(names) - 1]
        spec_list.append(AggregationSpec("min", sub))
        spec_list.append(AggregationSpec("max", sub))
    return spec_list


class TestDispersedKernels:
    @given(weights=weight_matrices, k=ks, seed=seeds, family=families,
           method=methods, mode=modes)
    @settings(deadline=None)
    def test_sset_and_lset(self, weights, k, seed, family, method, mode):
        summary = build_summary(weights, k, seed, family, method, mode)
        for spec in all_specs(summary.assignments):
            assert_parity(
                summary,
                lambda: sset_estimator(summary, spec),
                lambda: kernels.sset_kernel(summary, spec),
                f"sset {spec.function} ell={spec.ell}",
            )
            assert_parity(
                summary,
                lambda: lset_estimator(summary, spec),
                lambda: kernels.lset_kernel(summary, spec),
                f"lset {spec.function} ell={spec.ell}",
            )

    @given(weights=weight_matrices, k=ks, seed=seeds, family=families,
           method=methods, mode=modes, variant=st.sampled_from(["s", "l"]))
    @settings(deadline=None)
    def test_l1(self, weights, k, seed, family, method, mode, variant):
        summary = build_summary(weights, k, seed, family, method, mode)
        names = tuple(summary.assignments)
        spec = AggregationSpec("l1", names)
        assert_parity(
            summary,
            lambda: l1_estimator(summary, names, min_variant=variant),
            lambda: kernels.l1_kernel(summary, spec, min_variant=variant),
            f"l1-{variant}",
        )

    @given(weights=weight_matrices, k=ks, seed=seeds, family=families,
           method=methods, mode=modes)
    @settings(deadline=None)
    def test_plain_rc(self, weights, k, seed, family, method, mode):
        summary = build_summary(weights, k, seed, family, method, mode)
        for b in summary.assignments:
            assert_parity(
                summary,
                lambda: plain_rc_from_summary(summary, b),
                lambda: kernels.plain_rc_kernel(summary, b),
                f"plain_rc[{b}]",
            )


class TestColocatedKernels:
    @given(weights=weight_matrices, k=ks, seed=seeds, family=families,
           method=methods)
    @settings(deadline=None)
    def test_inclusive_and_generic(self, weights, k, seed, family, method):
        summary = build_summary(weights, k, seed, family, method, "colocated")
        for spec in all_specs(summary.assignments) + [
            AggregationSpec("l1", tuple(summary.assignments))
        ]:
            assert_parity(
                summary,
                lambda: colocated_estimator(summary, spec),
                lambda: kernels.colocated_kernel(summary, spec),
                f"colocated {spec.function} ell={spec.ell}",
            )
            assert_parity(
                summary,
                lambda: generic_consistent_estimator(summary, spec),
                lambda: kernels.generic_kernel(summary, spec),
                f"generic {spec.function} ell={spec.ell}",
            )

    @given(weights=weight_matrices, k=ks, seed=seeds)
    @settings(deadline=None)
    def test_independent_differences(self, weights, k, seed):
        """The EXP independent-differences method (Pr[A_ℓ] recursion)."""
        summary = build_summary(
            weights, k, seed, "exp", "independent_differences", "colocated"
        )
        for spec in all_specs(summary.assignments):
            assert_parity(
                summary,
                lambda: colocated_estimator(summary, spec),
                lambda: kernels.colocated_kernel(summary, spec),
                f"idiff colocated {spec.function} ell={spec.ell}",
            )


class TestPoissonKernels:
    @given(weights=weight_matrices, k=ks, seed=seeds, family=families,
           method=methods, mode=modes)
    @settings(deadline=None)
    def test_ht(self, weights, k, seed, family, method, mode):
        """Poisson summaries record k=0 when no expected size is given."""
        family_obj = get_rank_family(family)
        rng = np.random.default_rng(seed)
        draw = get_rank_method(method).draw(family_obj, weights, rng)
        taus = np.array(
            [
                calibrate_tau(weights[:, b], family_obj, min(k, MAX_KEYS))
                for b in range(weights.shape[1])
            ]
        )
        names = [f"w{b}" for b in range(weights.shape[1])]
        summary = build_poisson_summary(
            weights, draw, taus, names, family_obj, mode=mode
        )
        assert summary.k == 0  # the degenerate k the ISSUE calls out
        for b in names:
            assert_parity(
                summary,
                lambda: ht_from_summary(summary, b),
                lambda: kernels.ht_kernel(summary, b),
                f"ht[{b}]",
            )
        if mode == "colocated":
            for spec in all_specs(names):
                assert_parity(
                    summary,
                    lambda: colocated_estimator(summary, spec),
                    lambda: kernels.colocated_kernel(summary, spec),
                    f"poisson colocated {spec.function}",
                )


class TestDegenerateCases:
    def _check_all(self, summary):
        for spec in all_specs(summary.assignments):
            assert_parity(
                summary,
                lambda: sset_estimator(summary, spec),
                lambda: kernels.sset_kernel(summary, spec),
                f"sset {spec.function}",
            )
            assert_parity(
                summary,
                lambda: lset_estimator(summary, spec),
                lambda: kernels.lset_kernel(summary, spec),
                f"lset {spec.function}",
            )

    @pytest.mark.parametrize("mode", ["colocated", "dispersed"])
    @pytest.mark.parametrize("family", ["ipps", "exp"])
    def test_empty_summary(self, family, mode):
        """All-zero weights: nothing is sampled, the union is empty."""
        weights = np.zeros((5, 3))
        summary = build_summary(weights, 2, 0, family, "shared_seed", mode)
        assert summary.n_union == 0
        self._check_all(summary)

    @pytest.mark.parametrize("mode", ["colocated", "dispersed"])
    def test_single_key(self, mode):
        weights = np.array([[3.0, 0.0, 7.0]])
        summary = build_summary(weights, 2, 1, "ipps", "shared_seed", mode)
        self._check_all(summary)

    def test_subset_with_no_known_weights(self):
        """Dispersed rows can be all-unknown (NaN) within the queried R."""
        weights = np.array(
            [
                [100.0, 0.0],
                [90.0, 0.0],
                [80.0, 0.0],
                [0.1, 1.0],
                [0.2, 2.0],
            ]
        )
        summary = build_summary(weights, 2, 3, "ipps", "shared_seed",
                                "dispersed")
        # keys sampled only for w0 have an all-NaN row within R = (w1,)
        spec = AggregationSpec("max", ("w1",))
        assert np.isnan(summary.weights[:, 1]).any()
        assert_parity(
            summary,
            lambda: sset_estimator(summary, spec),
            lambda: kernels.sset_kernel(summary, spec),
            "all-NaN subset rows",
        )

    def test_k_at_least_n(self):
        weights = np.abs(np.random.default_rng(3).normal(5, 2, (4, 2)))
        summary = build_summary(weights, 10, 4, "exp", "shared_seed",
                                "dispersed")
        self._check_all(summary)

    def test_stream_built_summary(self):
        """Sketch-assembled dispersed summaries go through the same kernels."""
        from repro.ranks.hashing import KeyHasher

        rng = np.random.default_rng(0)
        hasher = KeyHasher(11)
        sketches = {}
        for name in ("a", "b"):
            sampler = BottomKStreamSampler(4, get_rank_family("ipps"), hasher)
            for key in range(12):
                weight = float(rng.pareto(1.5) + 0.1)
                sampler.process(key, weight)
            sketches[name] = sampler.sketch()
        summary = build_summary_from_sketches(
            sketches, get_rank_family("ipps")
        )
        self._check_all(summary)
