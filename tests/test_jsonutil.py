"""Tests for the RFC 8259-strict JSON contract (non-finite floats).

The satellite bugfix of PR 7: the service wire and the persistent query
cache must never emit bare ``NaN``/``Infinity`` tokens.  Non-finite
floats travel as ``null`` plus a ``"non_finite"`` marker map and are
restored client-side.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jsonutil import (
    NON_FINITE_KEY,
    dumps_strict,
    restore_non_finite,
    sanitize_non_finite,
)


def _reject(token):
    raise AssertionError(f"non-RFC token {token!r} reached the parser")


def loads_strict(text: str):
    """``json.loads`` that fails on NaN/Infinity/-Infinity tokens."""
    return json.loads(text, parse_constant=_reject)


class TestSanitize:
    def test_finite_payload_untouched(self):
        payload = {"estimate": 1.5, "sources": {"n": 3}, "ok": True}
        assert sanitize_non_finite(payload) == payload

    def test_top_level_nan(self):
        out = sanitize_non_finite({"estimate": float("nan"), "n": 3})
        assert out == {
            "estimate": None, "n": 3, NON_FINITE_KEY: {"/estimate": "nan"},
        }

    def test_nested_paths(self):
        payload = {
            "windows": [
                {"estimate": 1.0},
                {"estimate": float("inf")},
                {"estimate": float("-inf")},
            ],
            "sources": {"ratio": float("nan")},
        }
        out = sanitize_non_finite(payload)
        assert out[NON_FINITE_KEY] == {
            "/windows/1/estimate": "inf",
            "/windows/2/estimate": "-inf",
            "/sources/ratio": "nan",
        }
        assert out["windows"][1]["estimate"] is None
        assert out["windows"][0]["estimate"] == 1.0

    def test_idempotent(self):
        payload = {"estimate": float("nan"), "deep": [float("inf")]}
        once = sanitize_non_finite(payload)
        twice = sanitize_non_finite(once)
        assert once == twice

    def test_bools_and_none_survive(self):
        payload = {"a": True, "b": False, "c": None, "d": [True, None]}
        assert sanitize_non_finite(payload) == payload

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            sanitize_non_finite([1.0])

    def test_sanitized_payload_serializes_strictly(self):
        payload = {"estimate": float("nan"), "rows": [float("inf"), 2.0]}
        text = dumps_strict(sanitize_non_finite(payload))
        decoded = loads_strict(text)  # would raise on NaN/Infinity tokens
        assert decoded["estimate"] is None

    def test_unsanitized_payload_fails_loudly(self):
        with pytest.raises(ValueError):
            dumps_strict({"estimate": float("nan")})


class TestRestore:
    def test_round_trip_bit_exact(self):
        payload = {
            "estimate": float("nan"),
            "windows": [{"estimate": float("inf")}, {"estimate": 2.5}],
            "anchor": -1.25,
        }
        restored = restore_non_finite(sanitize_non_finite(payload))
        assert math.isnan(restored["estimate"])
        assert restored["windows"][0]["estimate"] == float("inf")
        assert restored["windows"][1]["estimate"] == 2.5
        assert restored["anchor"] == -1.25
        assert NON_FINITE_KEY not in restored

    def test_no_marker_is_identity(self):
        payload = {"estimate": 1.0}
        assert restore_non_finite(payload) is payload

    def test_round_trip_through_wire_form(self):
        """sanitize -> strict dumps -> loads -> restore == original."""
        payload = {"estimate": float("-inf"), "n": 7}
        wire = dumps_strict(sanitize_non_finite(payload), sort_keys=True)
        restored = restore_non_finite(loads_strict(wire))
        assert restored["estimate"] == float("-inf")
        assert restored["n"] == 7

    def test_unknown_marker_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            restore_non_finite(
                {"estimate": None, NON_FINITE_KEY: {"/estimate": "huge"}}
            )

    def test_dangling_path_rejected(self):
        with pytest.raises(ValueError, match="does not resolve"):
            restore_non_finite(
                {"estimate": None, NON_FINITE_KEY: {"/missing/deep": "nan"}}
            )


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10, 10),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N"), max_codepoint=0x2FF
        ),
        max_size=8,
    ),
)

_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("L", "N"), max_codepoint=0x2FF
                ),
                min_size=1,
                max_size=6,
            ).filter(lambda key: key != NON_FINITE_KEY),
            children,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


def _equal_with_nan(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (a != a and b != b) or a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _equal_with_nan(a[k], b[k]) for k in a
        )
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _equal_with_nan(x, y) for x, y in zip(a, b)
        )
    return a == b and type(a) is type(b)


@settings(deadline=None, max_examples=100)
@given(body=st.dictionaries(st.text(min_size=1, max_size=6).filter(
    lambda key: key != NON_FINITE_KEY and "/" not in key
), _payloads, max_size=4))
def test_arbitrary_payloads_round_trip(body):
    """sanitize -> strict wire -> restore reproduces the payload exactly,
    and the wire form always parses in strict RFC mode."""
    wire = dumps_strict(sanitize_non_finite(body), sort_keys=True)
    restored = restore_non_finite(loads_strict(wire))
    assert _equal_with_nan(restored, body)
