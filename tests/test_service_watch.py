"""Continuous queries and the non-finite JSON wire contract over HTTP.

End-to-end tests for PR 7's service surface: ``/watch`` registration
with immediate materialization, ticker-driven re-evaluation, long-poll
update delivery, persistence of registrations across daemon restarts
(``runtime.sqlite``), windowed/decayed queries over the wire, and the
RFC 8259-strict non-finite float contract on every query response.
"""

from __future__ import annotations

import json
import time
import urllib.request

import math

import numpy as np
import pytest

from repro.core.aggregates import AggregationSpec
from repro.engine.queries import QueryEngine
from repro.service import (
    NamespaceConfig,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

NS = NamespaceConfig("web", ("h1", "h2"), k=16, n_shards=2, salt=4)


def make_config(root, **overrides):
    base = dict(
        store_root=str(root),
        namespaces=(NS,),
        port=0,
        compact_to=None,
        tick_s=0.05,
    )
    base.update(overrides)
    return ServiceConfig(**base)


@pytest.fixture
def service(tmp_path):
    with ServiceThread(make_config(tmp_path / "store")) as thread:
        client = ServiceClient(port=thread.service.port)
        client.wait_ready()
        yield thread, client
        client.close()


def ingest_simple(client, keys, w1, w2=None):
    w2 = w1 if w2 is None else w2
    client.ingest("web", keys, {"h1": list(w1), "h2": list(w2)}, sync=True)


def wait_until(predicate, timeout=5.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    pytest.fail(message)


class TestWatchLifecycle:
    def test_register_materializes_immediately(self, service):
        _thread, client = service
        ingest_simple(client, ["a", "b"], [2.0, 3.0])
        result = client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1", "h2"]},
            {"above": 100.0},
            cadence_s=0.1,
        )
        watch = result["watch"]
        assert watch["id"] >= 1
        assert watch["enabled"] and watch["evaluations"] == 1
        assert watch["update_seq"] == 1
        assert watch["last_triggered"] is False  # 5.0 is not above 100
        assert watch["last_answer"]["estimate"] == pytest.approx(5.0)
        assert watch["last_error"] is None

    def test_ticker_triggers_past_threshold_and_long_poll_sees_it(
        self, service
    ):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        watch = client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1", "h2"]},
            {"above": 50.0},
            cadence_s=0.05,
        )["watch"]
        assert watch["last_triggered"] is False
        seq = watch["update_seq"]
        # push the estimate past the threshold; the ticker re-evaluates
        ingest_simple(client, ["big"], [1000.0])
        polled = client.watch_poll(watch["id"], after=seq, timeout=10.0)
        assert polled["timed_out"] is False
        updated = polled["watch"]
        assert updated["update_seq"] > seq
        updated = wait_until(
            lambda: next(
                (w for w in client.watches()
                 if w["id"] == watch["id"] and w["last_triggered"]),
                None,
            ),
            message="watch never triggered after crossing the threshold",
        )
        assert updated["last_answer"]["estimate"] > 50.0
        assert updated["triggered_count"] >= 1

    def test_below_threshold_direction(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [10.0])
        watch = client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1", "h2"]},
            {"below": 100.0},
            cadence_s=0.1,
        )["watch"]
        assert watch["last_triggered"] is True  # 10 < 100

    def test_poll_times_out_quietly(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        watch = client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1"]},
            {"above": 1e9},
            cadence_s=3600.0,  # never re-evaluates during the test
        )["watch"]
        result = client.watch_poll(
            watch["id"], after=watch["update_seq"], timeout=0.2
        )
        assert result["timed_out"] is True
        assert result["watch"]["update_seq"] == watch["update_seq"]

    def test_list_filter_and_remove(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        spec = {"kind": "estimate", "function": "max",
                "assignments": ["h1"]}
        first = client.watch_register(
            "web", spec, {"above": 1.0}, cadence_s=1.0
        )["watch"]
        second = client.watch_register(
            "web", spec, {"below": 2.0}, cadence_s=1.0
        )["watch"]
        listed = client.watches(namespace="web")
        assert [w["id"] for w in listed] == [first["id"], second["id"]]
        assert client.watches(namespace="nope") == []
        removed = client.watch_remove(first["id"])
        assert removed["removed"] == first["id"]
        assert [w["id"] for w in client.watches()] == [second["id"]]
        with pytest.raises(ServiceError) as excinfo:
            client.watch_poll(first["id"], timeout=0.1)
        assert excinfo.value.status == 404

    def test_watch_stats_surface_in_status(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1"]},
            {"below": 100.0},
            cadence_s=0.1,
        )
        status = client.status()
        watches = status["runtime"]["watches"]
        assert watches["registrations"] == 1
        assert watches["evaluations"] >= 1
        assert watches["currently_triggered"] == 1
        assert watches["erroring"] == 0

    def test_registration_validation(self, service):
        _thread, client = service
        spec = {"kind": "estimate", "function": "max",
                "assignments": ["h1"]}
        cases = [
            # (namespace, query, threshold, cadence, expected status)
            ("nope", spec, {"above": 1.0}, 1.0, 404),
            ("web", {"kind": "estimate", "function": "bogus",
                     "assignments": ["h1"]}, {"above": 1.0}, 1.0, 400),
            ("web", {"kind": "estimate", "function": "max",
                     "assignments": ["h1"], "window": "junk"},
             {"above": 1.0}, 1.0, 400),
            ("web", spec, {"sideways": 1.0}, 1.0, 400),
            ("web", spec, {"above": float("nan")}, 1.0, 400),
            ("web", spec, {"above": 1.0, "below": 2.0}, 1.0, 400),
            ("web", spec, {"above": 1.0}, 0.0, 400),
            ("web", spec, {"above": 1.0}, -5.0, 400),
        ]
        for namespace, query, threshold, cadence, status in cases:
            with pytest.raises(ServiceError) as excinfo:
                client.watch_register(namespace, query, threshold, cadence)
            assert excinfo.value.status == status, (
                namespace, query, threshold, cadence,
            )

    def test_watch_over_unknown_namespace_spec_rejected_eagerly(
        self, service
    ):
        # the spec is validated through the same code path as /query,
        # so a bad estimator string is a 400 at registration time
        _thread, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.watch_register(
                "web",
                {"kind": "estimate", "function": "max",
                 "assignments": ["h1"], "estimator": "bogus"},
                {"above": 1.0},
                1.0,
            )
        assert excinfo.value.status == 400


class TestWatchPersistence:
    def test_registrations_survive_restart(self, tmp_path):
        root = tmp_path / "store"
        config = make_config(root)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            ingest_simple(client, ["a"], [10.0])
            watch = client.watch_register(
                "web",
                {"kind": "estimate", "function": "max",
                 "assignments": ["h1", "h2"]},
                {"above": 5.0},
                cadence_s=0.05,
            )["watch"]
            watch_id = watch["id"]
            assert watch["last_triggered"] is True
            client.shutdown()

        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            listed = client.watches()
            assert [w["id"] for w in listed] == [watch_id]
            survivor = listed[0]
            assert survivor["threshold"] == {"above": 5.0}
            assert survivor["spec"]["function"] == "max"
            # the ticker picks evaluations back up on the restarted
            # daemon (its last_eval_at is long past the cadence)
            wait_until(
                lambda: client.watches()[0]["evaluations"]
                > survivor["evaluations"],
                message="restarted daemon never re-evaluated the watch",
            )
            client.close()

    def test_watch_evaluation_error_is_recorded_not_fatal(self, tmp_path):
        # register against data, then restart with an EMPTY live window
        # and no data in range: the evaluation errors (no data), the
        # daemon keeps running, and the error lands on the row
        root = tmp_path / "store"
        config = make_config(root)
        with ServiceThread(config) as thread:
            client = ServiceClient(port=thread.service.port)
            client.wait_ready()
            ingest_simple(client, ["a"], [1.0])
            watch = client.watch_register(
                "web",
                {"kind": "estimate", "function": "max",
                 "assignments": ["h1"],
                 "since": "21000101T0000", "until": "21000101T0000"},
                {"above": 1.0},
                cadence_s=0.1,
            )["watch"]
            assert watch["last_error"] is not None
            assert watch["last_answer"] is None
            assert watch["last_triggered"] is False
            status = client.status()
            assert status["runtime"]["watches"]["erroring"] == 1
            client.health()  # daemon alive and serving
            client.close()


class TestTemporalOverHttp:
    def test_window_series_round_trips(self, service):
        thread, client = service
        ingest_simple(client, ["a", "b"], [1.0, 2.0])
        result = client.window_series(
            "web", "max", ["h1", "h2"], window="2m", step="1m"
        )
        assert result["window_s"] == 120.0 and result["step_s"] == 60.0
        assert result["windows"], "live window data must resolve windows"
        last = result["windows"][-1]
        assert last["estimate"] == pytest.approx(3.0)
        # GET form is curlable with the same parameters
        url = (
            f"http://127.0.0.1:{thread.service.port}/query?"
            "namespace=web&function=max&assignments=h1,h2"
            "&window=2m&step=1m"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.load(response)
        assert payload["windows"] == result["windows"]

    def test_decayed_estimate_round_trips(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [8.0])
        plain = client.estimate("web", "max", ["h1", "h2"])
        decayed = client.estimate(
            "web", "max", ["h1", "h2"], decay="1h"
        )
        assert decayed["decay_s"] == 3600.0
        assert decayed["estimate"] <= plain["estimate"]
        assert "anchor" in decayed

    def test_step_without_window_is_rejected(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/query", {
                "kind": "estimate", "namespace": "web", "function": "max",
                "assignments": ["h1"], "step": "1m",
            })
        assert excinfo.value.status == 400

    def test_jaccard_rejects_temporal_params(self, service):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        for field in ("window", "decay"):
            with pytest.raises(ServiceError) as excinfo:
                client._request("POST", "/query", {
                    "kind": "jaccard", "namespace": "web",
                    "assignments": ["h1", "h2"], field: "1m",
                })
            assert excinfo.value.status == 400


class TestNonFiniteContract:
    def _force_nan(self, monkeypatch):
        real = QueryEngine.estimate

        def nan_estimate(self, spec, estimator="auto", predicate=None):
            real(self, spec, estimator=estimator, predicate=predicate)
            return float("nan")

        monkeypatch.setattr(QueryEngine, "estimate", nan_estimate)

    def test_non_finite_estimate_is_strict_json_on_the_wire(
        self, service, monkeypatch
    ):
        thread, client = service
        ingest_simple(client, ["a"], [1.0])
        self._force_nan(monkeypatch)

        def reject(token):
            raise AssertionError(
                f"non-RFC token {token!r} on the wire"
            )

        url = (
            f"http://127.0.0.1:{thread.service.port}/query?"
            "namespace=web&function=max&assignments=h1,h2"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read().decode()
        payload = json.loads(body, parse_constant=reject)  # strict mode
        assert payload["estimate"] is None
        assert payload["non_finite"] == {"/estimate": "nan"}

    def test_client_restores_non_finite_floats(self, service, monkeypatch):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        self._force_nan(monkeypatch)
        answer = client.estimate("web", "max", ["h1", "h2"])
        assert math.isnan(answer["estimate"])
        assert "non_finite" not in answer

    def test_cached_replay_preserves_the_contract(
        self, service, monkeypatch
    ):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        self._force_nan(monkeypatch)
        first = client.estimate("web", "max", ["h1", "h2"])
        assert first["cached"] is False and math.isnan(first["estimate"])
        second = client.estimate("web", "max", ["h1", "h2"])
        assert second["cached"] is True and math.isnan(second["estimate"])

    def test_watch_answers_survive_non_finite_estimates(
        self, service, monkeypatch
    ):
        _thread, client = service
        ingest_simple(client, ["a"], [1.0])
        self._force_nan(monkeypatch)
        watch = client.watch_register(
            "web",
            {"kind": "estimate", "function": "max",
             "assignments": ["h1"]},
            {"above": 10.0},
            cadence_s=3600.0,
        )["watch"]
        # NaN compares false against any threshold: never triggered
        assert watch["last_triggered"] is False
        assert watch["last_error"] is None
        assert math.isnan(watch["last_answer"]["estimate"])
