"""Engine equivalence/property tests.

The engine's contract is exactness: vectorized hashing, batch ingestion,
sketch merging, and sharded summarization must be *bit-identical* to the
reference single-pass / matrix-mode paths, for arbitrary inputs.  These
tests drive every path with hypothesis and assert full sketch equality
(keys, ranks, weights, seeds, ``kth_rank``, ``threshold``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ShardedSummarizer, merge_bottomk, merge_poisson, shard_indices
from repro.ranks.families import ExponentialRanks, IppsRanks
from repro.ranks.hashing import KeyHasher, hash_to_unit
from repro.sampling.bottomk import (
    BottomKStreamSampler,
    aggregate_stream,
    bottomk_from_ranks,
)
from repro.sampling.poisson import poisson_from_ranks

FAMILIES = {"ipps": IppsRanks(), "exp": ExponentialRanks()}

positive_weights = st.floats(min_value=1e-3, max_value=1e6)
weights_or_zero = st.one_of(st.just(0.0), positive_weights)
key_ints = st.integers(min_value=-(2**62), max_value=2**62)
family_names = st.sampled_from(["ipps", "exp"])


def assert_sketches_identical(a, b) -> None:
    assert a.k == b.k
    assert a.keys.tolist() == b.keys.tolist()
    np.testing.assert_array_equal(a.ranks, b.ranks)
    np.testing.assert_array_equal(a.weights, b.weights)
    assert a.kth_rank == b.kth_rank
    assert a.threshold == b.threshold
    if a.seeds is not None and b.seeds is not None:
        np.testing.assert_array_equal(a.seeds, b.seeds)


class TestVectorizedHashing:
    @given(keys=st.lists(key_ints, min_size=0, max_size=200), salt=st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_hash_array_matches_scalar_for_ints(self, keys, salt):
        hasher = KeyHasher(salt)
        expected = np.array([hash_to_unit(k, salt) for k in keys], dtype=float)
        actual = hasher.hash_array(np.array(keys, dtype=np.int64))
        np.testing.assert_array_equal(actual, expected)

    def test_hash_array_matches_scalar_for_other_dtypes(self):
        hasher = KeyHasher(17)
        cases = [
            np.array([0.0, -1.5, 3.25, 1e300]),
            np.array([True, False]),
            np.array(["flow-1", "flow-2", ""]),
            np.arange(5, dtype=np.uint64) + np.uint64(2**63),
            np.array([-1, 0, 1], dtype=np.int8),
        ]
        for arr in cases:
            expected = np.array(
                [hash_to_unit(k, 17) for k in arr.tolist()], dtype=float
            )
            np.testing.assert_array_equal(hasher.hash_array(arr), expected)

    def test_hash_array_tuple_keys(self):
        hasher = KeyHasher(3)
        keys = [("a", 1), ("a", 2), ("b", 1)]
        expected = np.array([hash_to_unit(k, 3) for k in keys])
        np.testing.assert_array_equal(hasher.hash_array(keys), expected)

    def test_mixed_type_batch_is_not_promoted(self):
        """np.asarray would fold [1, 'a'] to strings and [1, 2.5] to
        floats; batch hashing must keep the original key identities."""
        hasher = KeyHasher(7)
        for keys in ([1, "a"], [1, 2.5], [True, 2]):
            expected = np.array([hash_to_unit(k, 7) for k in keys])
            np.testing.assert_array_equal(hasher.hash_array(keys), expected)

    def test_integral_floats_hash_like_ints(self):
        """1.0 is the same dict/set key as 1, so it must hash the same —
        whether fed as a scalar, a float array, or a mixed list."""
        assert hash_to_unit(1.0, 5) == hash_to_unit(1, 5)
        assert hash_to_unit(-3.0, 5) == hash_to_unit(-3, 5)
        assert hash_to_unit(2.5, 5) != hash_to_unit(2, 5)
        hasher = KeyHasher(5)
        np.testing.assert_array_equal(
            hasher.hash_array(np.array([1.0, -3.0, 2.5])),
            np.array([hasher(1), hasher(-3), hasher(2.5)]),
        )

    def test_numpy_scalar_keys_hash_like_python_natives(self):
        """Object-array paths hand numpy scalars through unwidened; they
        must still name the same key as their Python counterparts."""
        assert hash_to_unit(np.int64(1), 7) == hash_to_unit(1, 7)
        assert hash_to_unit(np.uint64(2**63), 7) == hash_to_unit(2**63, 7)
        assert hash_to_unit(np.float64(2.5), 7) == hash_to_unit(2.5, 7)
        assert hash_to_unit(np.float64(3.0), 7) == hash_to_unit(3, 7)
        assert hash_to_unit(np.bool_(True), 7) == hash_to_unit(True, 7)
        # mixed batch containing a numpy scalar, through the object path
        hasher = KeyHasher(7)
        np.testing.assert_array_equal(
            hasher.hash_array([np.int64(1), "extra"]),
            np.array([hasher(1), hasher("extra")]),
        )

    def test_values_strictly_inside_unit_interval(self):
        values = KeyHasher(0).hash_array(np.arange(10_000))
        assert float(values.min()) > 0.0
        assert float(values.max()) < 1.0

    @given(keys=st.lists(key_ints, min_size=1, max_size=100), n_shards=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_shard_indices_vectorized_matches_scalar(self, keys, n_shards):
        fast = shard_indices(np.array(keys, dtype=np.int64), n_shards)
        slow = shard_indices(np.array(keys, dtype=object), n_shards)
        np.testing.assert_array_equal(fast, slow)
        assert fast.min() >= 0 and fast.max() < n_shards


class TestStreamMatrixEquivalence:
    """A stream sampler over an aggregated stream must equal matrix mode."""

    @given(
        weights=st.lists(weights_or_zero, min_size=1, max_size=80),
        k=st.integers(1, 12),
        salt=st.integers(0, 10_000),
        family=family_names,
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_equals_matrix_column(self, weights, k, salt, family):
        fam = FAMILIES[family]
        hasher = KeyHasher(salt)
        weights = np.asarray(weights)
        n = len(weights)
        positions = np.arange(n)
        seeds = hasher.hash_array(positions)
        ranks = fam.ranks_array(weights, seeds)
        matrix_sketch = bottomk_from_ranks(ranks, weights, k, seeds)

        sampler = BottomKStreamSampler(k, fam, hasher)
        for pos in positions.tolist():
            sampler.process(pos, float(weights[pos]))
        stream_sketch = sampler.sketch()

        assert_sketches_identical(matrix_sketch, stream_sketch)


class TestBatchEqualsItemLoop:
    @given(
        weights=st.lists(weights_or_zero, min_size=1, max_size=120),
        k=st.integers(1, 10),
        salt=st.integers(0, 10_000),
        family=family_names,
        chunk=st.integers(1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_process_batch_bit_identical(self, weights, k, salt, family, chunk):
        fam = FAMILIES[family]
        weights = np.asarray(weights)
        n = len(weights)
        keys = np.arange(n) * 7 - 3  # distinct, includes negatives

        by_item = BottomKStreamSampler(k, fam, KeyHasher(salt))
        for key, weight in zip(keys.tolist(), weights.tolist()):
            by_item.process(key, weight)

        by_batch = BottomKStreamSampler(k, fam, KeyHasher(salt))
        for lo in range(0, n, chunk):
            by_batch.process_batch(keys[lo : lo + chunk], weights[lo : lo + chunk])

        assert_sketches_identical(by_item.sketch(), by_batch.sketch())

    def test_mixed_type_batch_matches_item_loop(self):
        keys = ["a", 1, ("b", 2), 2.5, -7]
        weights = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        by_item = BottomKStreamSampler(3, IppsRanks(), KeyHasher(7))
        for key, weight in zip(keys, weights):
            by_item.process(key, float(weight))
        by_batch = BottomKStreamSampler(3, IppsRanks(), KeyHasher(7))
        by_batch.process_batch(keys, weights)
        assert_sketches_identical(by_item.sketch(), by_batch.sketch())

    def test_batch_rejects_duplicate_within_batch(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(0))
        with pytest.raises(ValueError, match="appears twice"):
            sampler.process_batch([1, 2, 1], np.ones(3))

    def test_batch_rejects_duplicate_across_calls(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(0))
        sampler.process(5, 1.0)
        with pytest.raises(ValueError, match="seen twice"):
            sampler.process_batch([9, 5], np.ones(2))

    def test_batch_marks_zero_weight_keys_as_seen(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(0))
        sampler.process_batch([1, 2], np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="seen twice"):
            sampler.process(1, 2.0)

    def test_batch_length_mismatch(self):
        sampler = BottomKStreamSampler(3, IppsRanks(), KeyHasher(0))
        with pytest.raises(ValueError, match="equal length"):
            sampler.process_batch([1, 2, 3], np.ones(2))

    def test_non_finite_weights_rejected_on_both_paths(self):
        """A NaN weight used to poison the per-item heap but be dropped by
        the batch path, silently breaking bit-parity."""
        for bad in (math.nan, math.inf):
            by_item = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
            with pytest.raises(ValueError, match="non-finite weight"):
                by_item.process("b", bad)
            by_batch = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
            with pytest.raises(ValueError, match="non-finite weight"):
                by_batch.process_batch(["a", "b"], np.array([1.0, bad]))

    def test_nan_keys_rejected_on_both_paths(self):
        """NaN never equals itself, so it would slip through every
        duplicate-key guard and corrupt the one-entry-per-key invariant."""
        by_item = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
        with pytest.raises(ValueError, match="NaN key"):
            by_item.process(math.nan, 1.0)
        by_batch = BottomKStreamSampler(2, IppsRanks(), KeyHasher(0))
        with pytest.raises(ValueError, match="NaN key"):
            by_batch.process_batch(np.array([1.0, math.nan]), np.ones(2))
        with pytest.raises(ValueError, match="NaN key"):
            by_batch.process_batch([math.nan, "mixed"], np.ones(2))


class TestMergeBottomK:
    @given(
        weights=st.lists(weights_or_zero, min_size=1, max_size=100),
        k=st.integers(1, 10),
        salt=st.integers(0, 10_000),
        family=family_names,
        labels=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_unpartitioned_sketch(self, weights, k, salt, family,
                                               labels):
        """Exactness over arbitrary partitions of a rank column."""
        fam = FAMILIES[family]
        weights = np.asarray(weights)
        n = len(weights)
        n_parts = labels.draw(st.integers(1, min(5, n)))
        part_of = np.asarray(
            labels.draw(
                st.lists(st.integers(0, n_parts - 1), min_size=n, max_size=n)
            )
        )
        seeds = KeyHasher(salt).hash_array(np.arange(n))
        ranks = fam.ranks_array(weights, seeds)
        full = bottomk_from_ranks(ranks, weights, k, seeds)
        parts = []
        for p in range(n_parts):
            mask = part_of == p
            parts.append(
                bottomk_from_ranks(
                    np.where(mask, ranks, math.inf),
                    np.where(mask, weights, 0.0),
                    k,
                    seeds,
                )
            )
        merged = merge_bottomk(*parts)
        assert_sketches_identical(full, merged)

    def test_threshold_when_one_part_dominates(self):
        """Merged r_{k+1} can be a part's threshold sentinel: the merged
        sample comes entirely from part A, and the union's third-smallest
        rank is A's own (k+1)-st, known only as A.threshold."""
        ranks = np.array([0.01, 0.02, 0.03, 0.5, 0.9])
        weights = np.ones(5)
        in_a = np.array([True, True, True, False, False])
        a = bottomk_from_ranks(
            np.where(in_a, ranks, np.inf), np.where(in_a, weights, 0.0), k=2
        )
        b = bottomk_from_ranks(
            np.where(~in_a, ranks, np.inf), np.where(~in_a, weights, 0.0), k=2
        )
        assert a.threshold == pytest.approx(0.03)
        merged = merge_bottomk(a, b)
        assert merged.keys.tolist() == [0, 1]
        assert merged.kth_rank == pytest.approx(0.02)
        assert merged.threshold == pytest.approx(0.03)

    def test_merge_is_associative_and_matches_stream(self):
        rng = np.random.default_rng(5)
        keys = np.arange(300)
        weights = rng.pareto(1.3, 300) + 0.01
        hasher = KeyHasher(9)
        single = BottomKStreamSampler(16, IppsRanks(), hasher)
        single.process_batch(keys, weights)
        parts = []
        for lo in range(0, 300, 100):
            sampler = BottomKStreamSampler(16, IppsRanks(), hasher)
            sampler.process_batch(keys[lo : lo + 100], weights[lo : lo + 100])
            parts.append(sampler.sketch())
        left_first = merge_bottomk(merge_bottomk(parts[0], parts[1]), parts[2])
        right_first = merge_bottomk(parts[0], merge_bottomk(parts[1], parts[2]))
        assert_sketches_identical(single.sketch(), left_first)
        assert_sketches_identical(left_first, right_first)

    def test_merge_method_on_sketch(self):
        a = bottomk_from_ranks(np.array([0.1]), np.ones(1), k=2)
        b = bottomk_from_ranks(np.array([np.inf, 0.2]), np.array([0.0, 1.0]), k=2)
        merged = a.merge(b)
        assert merged.keys.tolist() == [0, 1]
        assert merged.kth_rank == pytest.approx(0.2)
        assert merged.threshold == math.inf

    def test_rejects_duplicate_keys(self):
        a = bottomk_from_ranks(np.array([0.1, 0.2]), np.ones(2), k=2)
        with pytest.raises(ValueError, match="more than one sketch"):
            merge_bottomk(a, a)

    def test_rejects_mismatched_k(self):
        a = bottomk_from_ranks(np.array([0.1]), np.ones(1), k=2)
        b = bottomk_from_ranks(np.array([0.2]), np.ones(1), k=3)
        with pytest.raises(ValueError, match="sketch sizes differ"):
            merge_bottomk(a, b)

    def test_merge_of_empty_sketches(self):
        first = bottomk_from_ranks(np.array([np.inf]), np.zeros(1), k=3)
        second = bottomk_from_ranks(np.full(2, np.inf), np.zeros(2), k=3)
        merged = merge_bottomk(first, second)
        assert len(merged) == 0
        assert merged.kth_rank == math.inf
        assert merged.threshold == math.inf

    def test_merge_requires_at_least_one(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_bottomk()


class TestMergePoisson:
    def test_merge_equals_unpartitioned_sketch(self):
        rng = np.random.default_rng(2)
        n = 120
        weights = rng.pareto(1.4, n) + 0.02
        seeds = KeyHasher(4).hash_array(np.arange(n))
        ranks = IppsRanks().ranks_array(weights, seeds)
        tau = 0.05
        full = poisson_from_ranks(ranks, weights, tau, seeds)
        mask = rng.random(n) < 0.5
        part_a = poisson_from_ranks(
            np.where(mask, ranks, np.inf), np.where(mask, weights, 0.0), tau, seeds
        )
        part_b = poisson_from_ranks(
            np.where(~mask, ranks, np.inf), np.where(~mask, weights, 0.0), tau, seeds
        )
        merged = merge_poisson(part_a, part_b)
        assert merged.tau == full.tau
        assert merged.keys.tolist() == full.keys.tolist()
        np.testing.assert_array_equal(merged.ranks, full.ranks)
        np.testing.assert_array_equal(merged.weights, full.weights)
        np.testing.assert_array_equal(merged.seeds, full.seeds)

    def test_rejects_mismatched_tau(self):
        a = poisson_from_ranks(np.array([0.01]), np.ones(1), 0.5)
        b = poisson_from_ranks(np.array([0.02]), np.ones(1), 0.6)
        with pytest.raises(ValueError, match="thresholds differ"):
            merge_poisson(a, b)

    def test_rejects_duplicate_keys(self):
        a = poisson_from_ranks(np.array([0.01]), np.ones(1), 0.5)
        with pytest.raises(ValueError, match="more than one sketch"):
            a.merge(a)


class TestShardedSummarizer:
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 300), positive_weights),
            min_size=1,
            max_size=250,
        ),
        k=st.integers(1, 12),
        n_shards=st.integers(1, 7),
        salt=st.integers(0, 10_000),
        family=family_names,
        chunk=st.integers(1, 60),
    )
    @settings(max_examples=50, deadline=None)
    def test_sharded_equals_single_sampler(self, items, k, n_shards, salt,
                                           family, chunk):
        """Sharding, batching, and event order are invisible in the output."""
        fam = FAMILIES[family]
        totals = aggregate_stream(items)
        single = BottomKStreamSampler(k, fam, KeyHasher(salt))
        for key, total in totals.items():
            single.process(key, total)

        engine = ShardedSummarizer(
            k, ["a"], n_shards=n_shards, family=fam, hasher=KeyHasher(salt)
        )
        for lo in range(0, len(items), chunk):
            batch = items[lo : lo + chunk]
            engine.ingest(
                "a",
                np.array([key for key, _ in batch], dtype=np.int64),
                np.array([weight for _, weight in batch]),
            )
        assert_sketches_identical(single.sketch(), engine.sketches()["a"])

    def test_shard_count_does_not_change_summary(self):
        rng = np.random.default_rng(11)
        n_events = 4000
        keys = rng.integers(0, 700, n_events)
        weights = rng.pareto(1.2, n_events) + 0.01
        summaries = []
        for n_shards in (1, 3, 16):
            engine = ShardedSummarizer(
                32, ["x", "y"], n_shards=n_shards, hasher=KeyHasher(2)
            )
            engine.ingest("x", keys, weights)
            engine.ingest("y", keys[: n_events // 2], weights[: n_events // 2])
            summaries.append(engine.summary())
        base = summaries[0]
        for other in summaries[1:]:
            assert base.keys == other.keys
            np.testing.assert_array_equal(base.member, other.member)
            np.testing.assert_array_equal(base.ranks, other.ranks)
            np.testing.assert_array_equal(base.rank_k, other.rank_k)
            np.testing.assert_array_equal(base.rank_kplus1, other.rank_kplus1)

    def test_ingest_stream_matches_ingest(self):
        items = [("flow-1", 2.0), ("flow-2", 1.0), ("flow-1", 3.5)]
        a = ShardedSummarizer(2, ["w"], n_shards=3)
        a.ingest_stream("w", items)
        b = ShardedSummarizer(2, ["w"], n_shards=3)
        b.ingest("w", [key for key, _ in items],
                 np.array([weight for _, weight in items]))
        assert_sketches_identical(a.sketches()["w"], b.sketches()["w"])

    def test_tuple_keys_supported(self):
        engine = ShardedSummarizer(2, ["w"], n_shards=4)
        engine.ingest_stream(
            "w", [(("10.0.0.1", 80), 5.0), (("10.0.0.2", 443), 1.0)]
        )
        sketch = engine.sketches()["w"]
        assert set(sketch.keys.tolist()) == {("10.0.0.1", 80), ("10.0.0.2", 443)}

    def test_summary_feeds_dispersed_estimators(self):
        from repro.core.aggregates import AggregationSpec
        from repro.estimators.dispersed import dispersed_estimator

        rng = np.random.default_rng(3)
        keys = np.arange(150)
        w1 = rng.pareto(1.5, 150) + 0.1
        w2 = rng.pareto(1.5, 150) + 0.1
        engine = ShardedSummarizer(150, ["w1", "w2"], n_shards=4)
        engine.ingest("w1", keys, w1)
        engine.ingest("w2", keys, w2)
        summary = engine.summary()
        # k covers every key, so the estimate is exact
        spec = AggregationSpec("max", ("w1", "w2"))
        estimate = dispersed_estimator(summary, spec).total()
        assert estimate == pytest.approx(float(np.maximum(w1, w2).sum()))

    def test_int_and_float_batches_name_the_same_keys(self):
        """The same logical key may arrive as int in one batch and float in
        another; it must land in the same shard and aggregate to one key."""
        a = ShardedSummarizer(4, ["h"], n_shards=8, hasher=KeyHasher(1))
        a.ingest("h", np.array([1, 2, 3]), np.array([5.0, 1.0, 9.0]))
        a.ingest("h", np.array([1.0, 4.0]), np.array([3.0, 2.0]))
        b = ShardedSummarizer(4, ["h"], n_shards=8, hasher=KeyHasher(1))
        b.ingest("h", np.array([1, 2, 3, 1, 4]),
                 np.array([5.0, 1.0, 9.0, 3.0, 2.0]))
        sketch_a, sketch_b = a.sketches()["h"], b.sketches()["h"]
        assert sketch_a.keys.tolist() == sketch_b.keys.tolist()
        np.testing.assert_array_equal(sketch_a.ranks, sketch_b.ranks)
        np.testing.assert_array_equal(sketch_a.weights, sketch_b.weights)

    def test_single_shard_ingest_copies_caller_buffers(self):
        """A caller may refill one preallocated batch buffer between
        ingest calls; buffered chunks must not alias it."""
        reused_keys = np.empty(3, dtype=np.int64)
        reused_weights = np.empty(3)
        batches = [([1, 2, 3], [1.0, 2.0, 3.0]), ([4, 5, 6], [4.0, 5.0, 6.0])]
        a = ShardedSummarizer(8, ["h"], n_shards=1, hasher=KeyHasher(1))
        for batch_keys, batch_weights in batches:
            reused_keys[:] = batch_keys
            reused_weights[:] = batch_weights
            a.ingest("h", reused_keys, reused_weights)
        b = ShardedSummarizer(8, ["h"], n_shards=1, hasher=KeyHasher(1))
        for batch_keys, batch_weights in batches:
            b.ingest("h", np.array(batch_keys), np.array(batch_weights))
        assert_sketches_identical(a.sketches()["h"], b.sketches()["h"])

    def test_rejects_unknown_assignment(self):
        engine = ShardedSummarizer(2, ["a"])
        with pytest.raises(ValueError, match="unknown assignment"):
            engine.ingest("b", [1], np.ones(1))

    def test_rejects_negative_weights(self):
        engine = ShardedSummarizer(2, ["a"])
        with pytest.raises(ValueError, match="finite and non-negative"):
            engine.ingest("a", [1, 2], np.array([1.0, -0.5]))

    def test_rejects_nan_weights(self):
        engine = ShardedSummarizer(2, ["a"])
        with pytest.raises(ValueError, match="finite and non-negative"):
            engine.ingest("a", [1, 2], np.array([1.0, math.nan]))

    def test_rejects_nan_keys(self):
        engine = ShardedSummarizer(2, ["a"])
        with pytest.raises(ValueError, match="NaN key"):
            engine.ingest("a", np.array([1.0, math.nan]), np.ones(2))

    def test_empty_assignment_yields_empty_sketch(self):
        engine = ShardedSummarizer(3, ["a", "b"])
        engine.ingest("a", [1, 2], np.array([1.0, 2.0]))
        sketches = engine.sketches()
        assert len(sketches["b"]) == 0
        assert sketches["b"].threshold == math.inf
        summary = engine.summary()
        assert summary.n_union == 2
